#include "objmap/rbtree.hpp"

#include <stdexcept>

namespace hpm::objmap {

RbTree::RbTree(std::function<sim::Addr(std::uint64_t)> shadow_alloc)
    : shadow_alloc_(std::move(shadow_alloc)) {}

RbTree::~RbTree() { destroy(root_); }

void RbTree::destroy(Node* n) {
  if (n == nullptr) return;
  destroy(n->left);
  destroy(n->right);
  delete n;
}

void RbTree::rotate_left(Node* x) {
  Node* y = x->right;
  x->right = y->left;
  if (y->left != nullptr) y->left->parent = x;
  y->parent = x->parent;
  if (x->parent == nullptr) {
    root_ = y;
  } else if (x == x->parent->left) {
    x->parent->left = y;
  } else {
    x->parent->right = y;
  }
  y->left = x;
  x->parent = y;
}

void RbTree::rotate_right(Node* x) {
  Node* y = x->left;
  x->left = y->right;
  if (y->right != nullptr) y->right->parent = x;
  y->parent = x->parent;
  if (x->parent == nullptr) {
    root_ = y;
  } else if (x == x->parent->right) {
    x->parent->right = y;
  } else {
    x->parent->left = y;
  }
  y->right = x;
  x->parent = y;
}

void RbTree::insert(sim::Addr base, std::uint64_t size,
                    std::uint32_t object_id) {
  Node* parent = nullptr;
  Node* cur = root_;
  while (cur != nullptr) {
    parent = cur;
    if (base == cur->payload.base) {
      throw std::invalid_argument("RbTree::insert: duplicate base address");
    }
    cur = base < cur->payload.base ? cur->left : cur->right;
  }
  auto* z = new Node;
  z->payload = {.base = base,
                .size = size,
                .object_id = object_id,
                .shadow = shadow_alloc_ ? shadow_alloc_(sizeof(Node)) : 0};
  z->parent = parent;
  if (parent == nullptr) {
    root_ = z;
  } else if (base < parent->payload.base) {
    parent->left = z;
  } else {
    parent->right = z;
  }
  ++size_;
  insert_fixup(z);
}

void RbTree::insert_fixup(Node* z) {
  while (z->parent != nullptr && z->parent->color == kRed) {
    Node* gp = z->parent->parent;
    if (z->parent == gp->left) {
      Node* uncle = gp->right;
      if (uncle != nullptr && uncle->color == kRed) {
        z->parent->color = kBlack;
        uncle->color = kBlack;
        gp->color = kRed;
        z = gp;
      } else {
        if (z == z->parent->right) {
          z = z->parent;
          rotate_left(z);
        }
        z->parent->color = kBlack;
        gp->color = kRed;
        rotate_right(gp);
      }
    } else {
      Node* uncle = gp->left;
      if (uncle != nullptr && uncle->color == kRed) {
        z->parent->color = kBlack;
        uncle->color = kBlack;
        gp->color = kRed;
        z = gp;
      } else {
        if (z == z->parent->left) {
          z = z->parent;
          rotate_right(z);
        }
        z->parent->color = kBlack;
        gp->color = kRed;
        rotate_left(gp);
      }
    }
  }
  root_->color = kBlack;
}

RbTree::Node* RbTree::find_node(sim::Addr base) const {
  Node* cur = root_;
  while (cur != nullptr) {
    if (base == cur->payload.base) return cur;
    cur = base < cur->payload.base ? cur->left : cur->right;
  }
  return nullptr;
}

RbTree::Node* RbTree::minimum(Node* n) {
  while (n->left != nullptr) n = n->left;
  return n;
}

void RbTree::transplant(Node* u, Node* v) {
  if (u->parent == nullptr) {
    root_ = v;
  } else if (u == u->parent->left) {
    u->parent->left = v;
  } else {
    u->parent->right = v;
  }
  if (v != nullptr) v->parent = u->parent;
}

bool RbTree::erase(sim::Addr base) {
  Node* z = find_node(base);
  if (z == nullptr) return false;

  Node* y = z;
  Color y_original = y->color;
  Node* x = nullptr;
  Node* x_parent = nullptr;

  if (z->left == nullptr) {
    x = z->right;
    x_parent = z->parent;
    transplant(z, z->right);
  } else if (z->right == nullptr) {
    x = z->left;
    x_parent = z->parent;
    transplant(z, z->left);
  } else {
    y = minimum(z->right);
    y_original = y->color;
    x = y->right;
    if (y->parent == z) {
      x_parent = y;
    } else {
      x_parent = y->parent;
      transplant(y, y->right);
      y->right = z->right;
      y->right->parent = y;
    }
    transplant(z, y);
    y->left = z->left;
    y->left->parent = y;
    y->color = z->color;
  }
  delete z;
  --size_;
  if (y_original == kBlack) erase_fixup(x, x_parent);
  return true;
}

void RbTree::erase_fixup(Node* x, Node* x_parent) {
  while (x != root_ && (x == nullptr || x->color == kBlack)) {
    if (x_parent == nullptr) break;
    if (x == x_parent->left) {
      Node* w = x_parent->right;
      if (w->color == kRed) {
        w->color = kBlack;
        x_parent->color = kRed;
        rotate_left(x_parent);
        w = x_parent->right;
      }
      const bool left_black = w->left == nullptr || w->left->color == kBlack;
      const bool right_black =
          w->right == nullptr || w->right->color == kBlack;
      if (left_black && right_black) {
        w->color = kRed;
        x = x_parent;
        x_parent = x->parent;
      } else {
        if (right_black) {
          if (w->left != nullptr) w->left->color = kBlack;
          w->color = kRed;
          rotate_right(w);
          w = x_parent->right;
        }
        w->color = x_parent->color;
        x_parent->color = kBlack;
        if (w->right != nullptr) w->right->color = kBlack;
        rotate_left(x_parent);
        x = root_;
        break;
      }
    } else {
      Node* w = x_parent->left;
      if (w->color == kRed) {
        w->color = kBlack;
        x_parent->color = kRed;
        rotate_right(x_parent);
        w = x_parent->left;
      }
      const bool left_black = w->left == nullptr || w->left->color == kBlack;
      const bool right_black =
          w->right == nullptr || w->right->color == kBlack;
      if (left_black && right_black) {
        w->color = kRed;
        x = x_parent;
        x_parent = x->parent;
      } else {
        if (left_black) {
          if (w->right != nullptr) w->right->color = kBlack;
          w->color = kRed;
          rotate_left(w);
          w = x_parent->left;
        }
        w->color = x_parent->color;
        x_parent->color = kBlack;
        if (w->left != nullptr) w->left->color = kBlack;
        rotate_right(x_parent);
        x = root_;
        break;
      }
    }
  }
  if (x != nullptr) x->color = kBlack;
}

RbTree::Lookup RbTree::find_containing(sim::Addr addr) const {
  // Greatest base <= addr, recording the descent path.
  Lookup result;
  const Node* best = nullptr;
  const Node* cur = root_;
  while (cur != nullptr) {
    result.path.push_back(cur->payload.shadow);
    if (cur->payload.base <= addr) {
      best = cur;
      cur = cur->right;
    } else {
      cur = cur->left;
    }
  }
  if (best != nullptr && addr < best->payload.base + best->payload.size) {
    result.node = &best->payload;
  }
  return result;
}

RbTree::Lookup RbTree::lower_bound(sim::Addr addr) const {
  Lookup result;
  const Node* best = nullptr;
  const Node* cur = root_;
  while (cur != nullptr) {
    result.path.push_back(cur->payload.shadow);
    if (cur->payload.base >= addr) {
      best = cur;
      cur = cur->left;
    } else {
      cur = cur->right;
    }
  }
  if (best != nullptr) result.node = &best->payload;
  return result;
}

RbTree::Lookup RbTree::floor(sim::Addr addr) const {
  Lookup result;
  const Node* best = nullptr;
  const Node* cur = root_;
  while (cur != nullptr) {
    result.path.push_back(cur->payload.shadow);
    if (cur->payload.base <= addr) {
      best = cur;
      cur = cur->right;
    } else {
      cur = cur->left;
    }
  }
  if (best != nullptr) result.node = &best->payload;
  return result;
}

const RbTree::Node* RbTree::next_in_order(const Node* n) {
  if (n->right != nullptr) {
    const Node* cur = n->right;
    while (cur->left != nullptr) cur = cur->left;
    return cur;
  }
  const Node* cur = n;
  const Node* p = n->parent;
  while (p != nullptr && cur == p->right) {
    cur = p;
    p = p->parent;
  }
  return p;
}

void RbTree::visit_range(
    sim::Addr from, sim::Addr to,
    const std::function<bool(const HeapBlockNode&)>& visit) const {
  // Start from the first block with base >= from...
  const Node* start = nullptr;
  const Node* cur = root_;
  while (cur != nullptr) {
    if (cur->payload.base >= from) {
      start = cur;
      cur = cur->left;
    } else {
      cur = cur->right;
    }
  }
  for (const Node* n = start; n != nullptr && n->payload.base < to;
       n = next_in_order(n)) {
    if (!visit(n->payload)) return;
  }
}

std::size_t RbTree::height() const noexcept {
  std::function<std::size_t(const Node*)> h = [&](const Node* n) {
    if (n == nullptr) return static_cast<std::size_t>(0);
    return 1 + std::max(h(n->left), h(n->right));
  };
  return h(root_);
}

const HeapBlockNode* RbTree::min() const noexcept {
  if (root_ == nullptr) return nullptr;
  const Node* n = root_;
  while (n->left != nullptr) n = n->left;
  return &n->payload;
}

const HeapBlockNode* RbTree::max() const noexcept {
  if (root_ == nullptr) return nullptr;
  const Node* n = root_;
  while (n->right != nullptr) n = n->right;
  return &n->payload;
}

bool RbTree::check_node(const Node* n, int& black_height) const {
  if (n == nullptr) {
    black_height = 1;  // nil leaves are black
    return true;
  }
  // BST ordering with parent pointers intact.
  if (n->left != nullptr &&
      (n->left->parent != n || n->left->payload.base >= n->payload.base)) {
    return false;
  }
  if (n->right != nullptr &&
      (n->right->parent != n || n->right->payload.base <= n->payload.base)) {
    return false;
  }
  // No red node has a red child.
  if (n->color == kRed) {
    if ((n->left != nullptr && n->left->color == kRed) ||
        (n->right != nullptr && n->right->color == kRed)) {
      return false;
    }
  }
  int lh = 0;
  int rh = 0;
  if (!check_node(n->left, lh) || !check_node(n->right, rh)) return false;
  if (lh != rh) return false;
  black_height = lh + (n->color == kBlack ? 1 : 0);
  return true;
}

bool RbTree::validate() const {
  if (root_ == nullptr) return true;
  if (root_->color != kBlack) return false;
  if (root_->parent != nullptr) return false;
  int bh = 0;
  return check_node(root_, bh);
}

}  // namespace hpm::objmap
