// Object identity shared by the object-mapping layer and the measurement
// tools: a program "memory object" is a global/static variable, a heap
// block, or (for the §5 stack extension) a function-local aggregated across
// activations.
#pragma once

#include <cstdint>
#include <string>

#include "sim/address_space.hpp"
#include "sim/types.hpp"

namespace hpm::objmap {

enum class ObjectKind : std::uint8_t {
  kStatic,      ///< global or static variable (from the symbol table)
  kHeap,        ///< dynamically allocated block (from the heap tracker)
  kStackLocal,  ///< per-(function, variable) aggregate (§5 extension)
  kHeapGroup,   ///< a site arena treated as one object (§5 extension)
};

/// A stable, cheap handle.  `index` is an index into the per-kind object
/// table and never changes, even after a heap block is freed.
struct ObjectRef {
  ObjectKind kind = ObjectKind::kStatic;
  std::uint32_t index = 0;

  constexpr bool operator==(const ObjectRef&) const noexcept = default;
  constexpr auto operator<=>(const ObjectRef&) const noexcept = default;
};

struct ObjectInfo {
  std::string name;
  sim::Addr base = 0;       ///< current activation for stack locals
  std::uint64_t size = 0;
  ObjectKind kind = ObjectKind::kStatic;
  sim::AllocSite site = sim::kNoSite;  ///< heap blocks only
  bool live = true;                    ///< heap blocks flip on free
};

struct ObjectRefHash {
  [[nodiscard]] std::size_t operator()(const ObjectRef& r) const noexcept {
    return (static_cast<std::size_t>(r.kind) << 32) ^ r.index;
  }
};

}  // namespace hpm::objmap
