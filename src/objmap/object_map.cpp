#include "objmap/object_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpm::objmap {

void ObjectMap::attach(sim::AddressSpace& as) {
  as_ = &as;
  // Shadow storage for the symbol array (one cache line per entry, matching
  // the paper's "sorted array for variables").
  shadow_symbols_base_ = as.alloc_instr(kShadowSymbolCapacity * 64, 64);
  symbols_.set_shadow_storage(shadow_symbols_base_, 64);

  sim::AddressSpace::Hooks hooks;
  hooks.on_static = [this](std::string_view name, sim::Addr base,
                           std::uint64_t size) {
    add_static(name, base, size);
  };
  hooks.on_alloc = [this](sim::Addr base, std::uint64_t size,
                          sim::AllocSite site) {
    add_heap_block(base, size, site);
  };
  hooks.on_free = [this](sim::Addr base) { remove_heap_block(base); };
  hooks.on_arena = [this](sim::AllocSite site, sim::Addr base,
                          std::uint64_t size) {
    add_arena_group(site, base, size);
  };
  hooks.on_frame_push = [this](std::string_view f) { push_frame(f); };
  hooks.on_frame_local = [this](std::string_view name, sim::Addr base,
                                std::uint64_t size) {
    add_local(name, base, size);
  };
  hooks.on_frame_pop = [this]() { pop_frame(); };
  as.set_hooks(std::move(hooks));
}

sim::Addr ObjectMap::shadow_alloc(std::uint64_t size) {
  return as_ == nullptr ? 0 : as_->alloc_instr(size, 64);
}

void ObjectMap::add_static(std::string_view name, sim::Addr base,
                           std::uint64_t size) {
  symbols_.add(name, base, size);
}

void ObjectMap::add_heap_block(sim::Addr base, std::uint64_t size,
                               sim::AllocSite site) {
  heap_.on_alloc(base, size, site);
}

void ObjectMap::remove_heap_block(sim::Addr base) { heap_.on_free(base); }

void ObjectMap::set_site_name(sim::AllocSite site, std::string name) {
  heap_.set_site_name(site, std::move(name));
  for (auto& arena : arenas_) {
    if (arena.site == site) arena.name = *heap_.site_name(site);
  }
}

void ObjectMap::add_arena_group(sim::AllocSite site, sim::Addr base,
                                std::uint64_t size) {
  const std::string* named = heap_.site_name(site);
  ArenaGroup group;
  group.name = named != nullptr ? *named
                                : "site#" + std::to_string(site);
  group.range = {base, base + size};
  group.site = site;
  arenas_.push_back(std::move(group));
}

const ObjectMap::ArenaGroup* ObjectMap::arena_containing(
    sim::Addr addr) const {
  for (const auto& arena : arenas_) {
    if (arena.range.contains(addr)) return &arena;
  }
  return nullptr;
}

void ObjectMap::push_frame(std::string_view function) {
  frame_names_.emplace_back(function);
}

std::uint32_t ObjectMap::stack_aggregate_id(const std::string& key) {
  auto it = stack_agg_by_key_.find(key);
  if (it != stack_agg_by_key_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(stack_aggregates_.size());
  stack_aggregates_.push_back({key, 0});
  stack_agg_by_key_.emplace(key, id);
  return id;
}

void ObjectMap::add_local(std::string_view name, sim::Addr base,
                          std::uint64_t size) {
  if (frame_names_.empty()) {
    throw std::logic_error("ObjectMap::add_local outside any frame");
  }
  const std::string key = frame_names_.back() + "::" + std::string(name);
  const std::uint32_t agg = stack_aggregate_id(key);
  ++stack_aggregates_[agg].activations;
  active_locals_.push_back(
      {agg, base, size, frame_names_.size() - 1});
}

void ObjectMap::pop_frame() {
  if (frame_names_.empty()) {
    throw std::logic_error("ObjectMap::pop_frame with empty stack");
  }
  const std::size_t frame = frame_names_.size() - 1;
  while (!active_locals_.empty() && active_locals_.back().frame == frame) {
    active_locals_.pop_back();
  }
  frame_names_.pop_back();
}

ObjectMap::Lookup ObjectMap::resolve(sim::Addr addr) const {
  Lookup out;
  // Dispatch on segment.  Tools know the segment layout the same way the
  // paper's tool knows which addresses are heap (from the break) vs. data.
  if (as_ != nullptr) {
    const auto& layout = as_->layout();
    if (layout.stack.contains(addr)) {
      // Innermost active local containing the address.
      for (auto it = active_locals_.rbegin(); it != active_locals_.rend();
           ++it) {
        if (addr >= it->base && addr < it->base + it->size) {
          out.found = true;
          out.ref = {ObjectKind::kStackLocal, it->aggregate};
          return out;
        }
      }
      return out;
    }
  }
  // Grouping arenas subsume the blocks inside them (§5).
  for (std::size_t i = 0; i < arenas_.size(); ++i) {
    if (arenas_[i].range.contains(addr)) {
      out.found = true;
      out.ref = {ObjectKind::kHeapGroup, static_cast<std::uint32_t>(i)};
      return out;
    }
  }
  // Heap next (heap addresses are above the data segment in our layout, but
  // resolve must be layout-agnostic when no AddressSpace is attached).
  {
    auto h = heap_.find_containing(addr);
    out.shadow_path = std::move(h.shadow_path);
    if (h.info != nullptr) {
      out.found = true;
      out.ref = {ObjectKind::kHeap, h.index};
      return out;
    }
  }
  {
    auto s = symbols_.find_containing(addr);
    out.shadow_path.insert(out.shadow_path.end(), s.shadow_path.begin(),
                           s.shadow_path.end());
    if (s.entry != nullptr) {
      out.found = true;
      out.ref = {ObjectKind::kStatic, s.index};
    }
  }
  return out;
}

ObjectInfo ObjectMap::info(ObjectRef ref) const {
  switch (ref.kind) {
    case ObjectKind::kStatic: {
      const auto& e = symbols_.entry(ref.index);
      return {e.name, e.base, e.size, ObjectKind::kStatic, sim::kNoSite, true};
    }
    case ObjectKind::kHeap:
      return heap_.object(ref.index);
    case ObjectKind::kHeapGroup: {
      const auto& arena = arenas_.at(ref.index);
      return {arena.name, arena.range.base, arena.range.size(),
              ObjectKind::kHeapGroup, arena.site, true};
    }
    case ObjectKind::kStackLocal: {
      const auto& agg = stack_aggregates_.at(ref.index);
      // Current activation extent if one is live.
      for (auto it = active_locals_.rbegin(); it != active_locals_.rend();
           ++it) {
        if (it->aggregate == ref.index) {
          return {agg.name, it->base, it->size, ObjectKind::kStackLocal,
                  sim::kNoSite, true};
        }
      }
      return {agg.name, 0, 0, ObjectKind::kStackLocal, sim::kNoSite, false};
    }
  }
  throw std::logic_error("ObjectMap::info: bad kind");
}

std::string ObjectMap::display_name(ObjectRef ref) const {
  return info(ref).name;
}

std::optional<std::string> ObjectMap::site_group_name(ObjectRef ref) const {
  if (ref.kind != ObjectKind::kHeap) return std::nullopt;
  const auto& obj = heap_.object(ref.index);
  if (obj.site == sim::kNoSite) return std::nullopt;
  const std::string* name = heap_.site_name(obj.site);
  if (name == nullptr) return std::nullopt;
  return *name;
}

sim::Addr ObjectMap::snap_split_point(sim::Addr candidate,
                                      sim::AddrRange region) const {
  if (!region.contains(candidate) || candidate == region.base) {
    return region.base;
  }
  // Is the candidate strictly inside an object?  Arenas count as one
  // object and take precedence over the blocks inside them.
  sim::Addr obj_base = 0;
  sim::Addr obj_end = 0;
  bool inside = false;
  if (const ArenaGroup* arena = arena_containing(candidate)) {
    obj_base = arena->range.base;
    obj_end = arena->range.bound;
    inside = candidate > obj_base;
  } else if (auto h = heap_.find_containing(candidate); h.info != nullptr) {
    obj_base = h.info->base;
    obj_end = h.info->base + h.info->size;
    inside = candidate > obj_base;
  } else if (auto s = symbols_.find_containing(candidate);
             s.entry != nullptr) {
    obj_base = s.entry->base;
    obj_end = s.entry->base + s.entry->size;
    inside = candidate > obj_base;
  }
  if (!inside) return candidate;  // on an object boundary or in a gap

  // Snap to the nearer object edge that still splits the region.
  const bool base_ok = obj_base > region.base && obj_base < region.bound;
  const bool end_ok = obj_end > region.base && obj_end < region.bound;
  if (base_ok && end_ok) {
    return (candidate - obj_base) <= (obj_end - candidate) ? obj_base
                                                           : obj_end;
  }
  if (base_ok) return obj_base;
  if (end_ok) return obj_end;
  return region.base;  // object spans the whole region: unsplittable here
}

std::size_t ObjectMap::count_objects_overlapping(sim::AddrRange r,
                                                 std::size_t cap) const {
  std::size_t n = 0;
  for_each_overlapping(r, [&](ObjectRef, const ObjectInfo&) {
    ++n;
    return n < cap;
  });
  return n;
}

std::optional<ObjectRef> ObjectMap::single_object_in(sim::AddrRange r) const {
  std::optional<ObjectRef> found;
  std::size_t n = 0;
  for_each_overlapping(r, [&](ObjectRef ref, const ObjectInfo&) {
    found = ref;
    ++n;
    return n < 2;
  });
  if (n == 1) return found;
  return std::nullopt;
}

void ObjectMap::for_each_overlapping(
    sim::AddrRange r,
    const std::function<bool(ObjectRef, const ObjectInfo&)>& visit) const {
  if (r.empty()) return;
  // Statics: entries are sorted by base and non-overlapping.
  {
    std::uint32_t i = symbols_.lower_bound(r.base);
    // The previous symbol may span r.base.
    if (i > 0) {
      const auto& prev = symbols_.entry(i - 1);
      if (prev.base + prev.size > r.base) --i;
    }
    for (; i < symbols_.size(); ++i) {
      const auto& e = symbols_.entry(i);
      if (e.base >= r.bound) break;
      if (e.base + e.size > r.base) {
        if (!visit({ObjectKind::kStatic, i},
                   {e.name, e.base, e.size, ObjectKind::kStatic, sim::kNoSite,
                    true})) {
          return;
        }
      }
    }
  }
  // Grouping arenas overlapping the region count as single objects, and
  // the heap blocks inside them are subsumed.
  for (std::size_t i = 0; i < arenas_.size(); ++i) {
    if (!arenas_[i].range.overlaps(r)) continue;
    if (!visit({ObjectKind::kHeapGroup, static_cast<std::uint32_t>(i)},
               info({ObjectKind::kHeapGroup,
                     static_cast<std::uint32_t>(i)}))) {
      return;
    }
  }
  // Heap blocks: the block spanning r.base first, then the in-order range.
  {
    auto in_arena = [&](sim::Addr base) {
      return arena_containing(base) != nullptr;
    };
    bool keep_going = true;
    auto floor = heap_.find_containing(r.base);
    if (floor.info != nullptr && floor.info->base < r.base &&
        !in_arena(floor.info->base)) {
      keep_going = visit({ObjectKind::kHeap, floor.index}, *floor.info);
    }
    if (keep_going) {
      heap_.visit_live_range(
          r.base, r.bound,
          [&](const ObjectInfo& info, std::uint32_t index) {
            if (in_arena(info.base)) return true;  // subsumed by its group
            return visit({ObjectKind::kHeap, index}, info);
          });
    }
  }
}

sim::AddrRange ObjectMap::occupied_span() const {
  sim::AddrRange span{sim::kNullAddr, sim::kNullAddr};
  bool any = false;
  if (!symbols_.empty()) {
    const auto& first = symbols_.entry(0);
    const auto& last = symbols_.entry(static_cast<std::uint32_t>(
        symbols_.size() - 1));
    span = {first.base, last.base + last.size};
    any = true;
  }
  if (const HeapBlockNode* lo = heap_.tree().min(); lo != nullptr) {
    const HeapBlockNode* hi = heap_.tree().max();
    if (!any) {
      span = {lo->base, hi->base + hi->size};
      any = true;
    } else {
      span.base = std::min(span.base, lo->base);
      span.bound = std::max(span.bound, hi->base + hi->size);
    }
  }
  for (const auto& arena : arenas_) {
    if (!any) {
      span = arena.range;
      any = true;
    } else {
      span.base = std::min(span.base, arena.range.base);
      span.bound = std::max(span.bound, arena.range.bound);
    }
  }
  return span;
}

}  // namespace hpm::objmap
