// Heap-block tracking via instrumented allocation functions.
//
// The paper tracks "the location of dynamically allocated memory objects ...
// by instrumenting memory allocation library functions"; live extents live
// in the red-black tree.  Blocks are named by their base address in hex
// (Table 1 lists ijpeg blocks as "0x141020000"), optionally overridden by an
// allocation-site name for the §5 related-block aggregation extension.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "objmap/object_id.hpp"
#include "objmap/rbtree.hpp"
#include "sim/address_space.hpp"
#include "sim/types.hpp"

namespace hpm::objmap {

class HeapTracker {
 public:
  explicit HeapTracker(
      std::function<sim::Addr(std::uint64_t)> shadow_alloc = nullptr);

  /// malloc hook.
  std::uint32_t on_alloc(sim::Addr base, std::uint64_t size,
                         sim::AllocSite site);
  /// free hook; the object's table entry survives (not live) so sampled
  /// counts attributed to it remain reportable.
  void on_free(sim::Addr base);

  /// Name an allocation site; blocks from that site report under this name
  /// when aggregation is requested by the tool.
  void set_site_name(sim::AllocSite site, std::string name);
  [[nodiscard]] const std::string* site_name(sim::AllocSite site) const;

  struct Lookup {
    const ObjectInfo* info = nullptr;
    std::uint32_t index = 0;
    std::vector<sim::Addr> shadow_path;
  };
  [[nodiscard]] Lookup find_containing(sim::Addr addr) const;

  [[nodiscard]] const ObjectInfo& object(std::uint32_t index) const {
    return objects_.at(index);
  }
  [[nodiscard]] std::size_t object_count() const noexcept {
    return objects_.size();
  }
  [[nodiscard]] std::size_t live_count() const noexcept {
    return tree_.size();
  }
  [[nodiscard]] const RbTree& tree() const noexcept { return tree_; }

  /// Visit live blocks with base in [from, to).
  void visit_live_range(
      sim::Addr from, sim::Addr to,
      const std::function<bool(const ObjectInfo&, std::uint32_t index)>&
          visit) const;

  /// Total allocations / frees seen (monotonic).
  [[nodiscard]] std::uint64_t alloc_events() const noexcept {
    return alloc_events_;
  }
  [[nodiscard]] std::uint64_t free_events() const noexcept {
    return free_events_;
  }

 private:
  RbTree tree_;
  std::vector<ObjectInfo> objects_;
  std::unordered_map<sim::AllocSite, std::string> site_names_;
  std::uint64_t alloc_events_ = 0;
  std::uint64_t free_events_ = 0;
};

}  // namespace hpm::objmap
