// Symbol table for global and static variables.
//
// Mirrors the paper's approach: "for global and static variables, this can
// be done easily using data from symbol tables and debug information."
// Extents are kept in a sorted array (paper §2.2) and looked up by binary
// search.  Like the RB tree, each entry has a shadow address so tools can
// replay probe sequences against the simulated cache.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace hpm::objmap {

class SymbolTable {
 public:
  struct Entry {
    std::string name;
    sim::Addr base = 0;
    std::uint64_t size = 0;
    sim::Addr shadow = 0;
  };

  struct Lookup {
    const Entry* entry = nullptr;
    std::uint32_t index = 0;              ///< valid iff entry != nullptr
    std::vector<sim::Addr> shadow_path;   ///< probe sequence shadow addrs
  };

  /// Add a symbol.  Symbols must not overlap; insertion keeps the array
  /// sorted by base address.
  std::uint32_t add(std::string_view name, sim::Addr base,
                    std::uint64_t size);

  /// Assign shadow storage: entry i lives at `base + i * stride` in the
  /// simulated instrumentation segment.
  void set_shadow_storage(sim::Addr base, std::uint64_t stride) noexcept;

  /// Binary search for the symbol containing `addr`.
  [[nodiscard]] Lookup find_containing(sim::Addr addr) const;

  /// Index of first symbol with base >= addr (== size() if none).
  [[nodiscard]] std::uint32_t lower_bound(sim::Addr addr) const;

  [[nodiscard]] const Entry& entry(std::uint32_t index) const {
    return entries_.at(index);
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

 private:
  [[nodiscard]] sim::Addr shadow_of(std::size_t index) const noexcept {
    return shadow_base_ == 0 ? 0 : shadow_base_ + index * shadow_stride_;
  }

  std::vector<Entry> entries_;  // sorted by base, non-overlapping
  sim::Addr shadow_base_ = 0;
  std::uint64_t shadow_stride_ = 64;
};

}  // namespace hpm::objmap
