#include "objmap/heap_tracker.hpp"

#include <cstdio>

namespace hpm::objmap {

namespace {
std::string hex_name(sim::Addr base) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(base));
  return buf;
}
}  // namespace

HeapTracker::HeapTracker(std::function<sim::Addr(std::uint64_t)> shadow_alloc)
    : tree_(std::move(shadow_alloc)) {}

std::uint32_t HeapTracker::on_alloc(sim::Addr base, std::uint64_t size,
                                    sim::AllocSite site) {
  ++alloc_events_;
  const auto index = static_cast<std::uint32_t>(objects_.size());
  objects_.push_back(ObjectInfo{.name = hex_name(base),
                                .base = base,
                                .size = size,
                                .kind = ObjectKind::kHeap,
                                .site = site,
                                .live = true});
  tree_.insert(base, size, index);
  return index;
}

void HeapTracker::on_free(sim::Addr base) {
  ++free_events_;
  const auto found = tree_.find_containing(base);
  if (found.node != nullptr && found.node->base == base) {
    objects_[found.node->object_id].live = false;
    tree_.erase(base);
  }
}

void HeapTracker::set_site_name(sim::AllocSite site, std::string name) {
  site_names_[site] = std::move(name);
}

const std::string* HeapTracker::site_name(sim::AllocSite site) const {
  auto it = site_names_.find(site);
  return it == site_names_.end() ? nullptr : &it->second;
}

HeapTracker::Lookup HeapTracker::find_containing(sim::Addr addr) const {
  Lookup out;
  auto found = tree_.find_containing(addr);
  out.shadow_path = std::move(found.path);
  if (found.node != nullptr) {
    out.index = found.node->object_id;
    out.info = &objects_[found.node->object_id];
  }
  return out;
}

void HeapTracker::visit_live_range(
    sim::Addr from, sim::Addr to,
    const std::function<bool(const ObjectInfo&, std::uint32_t)>& visit) const {
  tree_.visit_range(from, to, [&](const HeapBlockNode& n) {
    return visit(objects_[n.object_id], n.object_id);
  });
}

}  // namespace hpm::objmap
