#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "harness/json_export.hpp"
#include "harness/resilience.hpp"

namespace hpm::serve {
namespace {

std::string begin_record(const std::string& fingerprint,
                         const std::string& canonical_sweep) {
  // The canonical sweep is already compact JSON; splice it verbatim.
  return "{\"schema\":\"hpm.serve.journal.v1\",\"op\":\"begin\","
         "\"fingerprint\":\"" +
         harness::json_escape(fingerprint) + "\",\"sweep\":" +
         canonical_sweep + "}\n";
}

}  // namespace

RequestJournal::RequestJournal(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  // Probe at startup with an fsynced no-op append: a server that cannot
  // persist acceptance must refuse to start, not lose work at runtime.
  const int fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0 || ::fsync(fd) != 0) {
    const std::string error = std::strerror(errno);
    if (fd >= 0) ::close(fd);
    throw std::runtime_error("cannot open recovery journal " + path_ + ": " +
                             error);
  }
  ::close(fd);
}

void RequestJournal::append_line(const std::string& line) {
  if (path_.empty()) return;
  const int fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;  // degrade: lose recovery, never block serving
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
}

void RequestJournal::begin(const std::string& fingerprint,
                           const std::string& canonical_sweep) {
  append_line(begin_record(fingerprint, canonical_sweep));
}

void RequestJournal::end(const std::string& fingerprint,
                         const std::string& status) {
  append_line(
      "{\"schema\":\"hpm.serve.journal.v1\",\"op\":\"end\",\"fingerprint\":\"" +
      harness::json_escape(fingerprint) + "\",\"status\":\"" +
      harness::json_escape(status) + "\"}\n");
}

std::vector<PendingRequest> RequestJournal::recover(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  // Keyed map so repeated begins (a sweep accepted, crashed, replayed,
  // crashed again) collapse to one pending entry; insertion order kept so
  // replay preserves acceptance order.
  std::map<std::string, std::size_t> index;
  std::vector<PendingRequest> pending;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    harness::JsonValue record;
    try {
      record = harness::JsonValue::parse(line);
    } catch (const std::exception&) {
      continue;  // truncated trailing line (writer died mid-append)
    }
    const harness::JsonValue* schema = record.find("schema");
    const harness::JsonValue* op = record.find("op");
    const harness::JsonValue* fingerprint = record.find("fingerprint");
    if (schema == nullptr || op == nullptr || fingerprint == nullptr ||
        schema->kind() != harness::JsonValue::Kind::kString ||
        schema->str() != "hpm.serve.journal.v1") {
      continue;
    }
    const std::string fp = fingerprint->str();
    if (op->str() == "begin") {
      const harness::JsonValue* sweep = record.find("sweep");
      if (sweep == nullptr) continue;
      std::ostringstream compact;
      harness::write_json_value(compact, *sweep);
      if (index.find(fp) == index.end()) {
        index[fp] = pending.size();
        pending.push_back(PendingRequest{fp, std::move(compact).str()});
      } else {
        pending[index[fp]].canonical_sweep = std::move(compact).str();
      }
    } else if (op->str() == "end") {
      const auto it = index.find(fp);
      if (it != index.end()) {
        pending[it->second].fingerprint.clear();  // tombstone
        index.erase(it);
      }
    }
  }
  std::vector<PendingRequest> out;
  for (PendingRequest& request : pending) {
    if (!request.fingerprint.empty()) out.push_back(std::move(request));
  }
  return out;
}

void RequestJournal::compact(const std::string& path,
                             const std::vector<PendingRequest>& pending) {
  std::string content;
  for (const PendingRequest& request : pending) {
    content += begin_record(request.fingerprint, request.canonical_sweep);
  }
  (void)harness::atomic_write_file(path, content);  // best-effort
}

}  // namespace hpm::serve
