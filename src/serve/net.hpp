// Minimal POSIX TCP plumbing for the hpmserve daemon and its clients.
//
// Deliberately tiny: a move-only fd owner, a buffered line reader with an
// upper bound on line length (a garbage peer must not balloon memory), and
// a listener whose accept() takes a timeout so the accept loop can notice
// shutdown without signals.  All writes use MSG_NOSIGNAL — a client that
// vanishes mid-reply produces a send error, never SIGPIPE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hpm::serve {

/// Owning socket wrapper (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Write all of `data`; false on any error (peer gone, buffer dead).
  bool send_all(std::string_view data) noexcept;
  /// Convenience: send_all(line) + '\n'.
  bool send_line(std::string_view line) noexcept;

  /// Shut both directions down (wakes a blocked reader on the other side
  /// of this fd) without closing the descriptor.
  void shutdown() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Buffered '\n'-delimited reader over a socket.  A line longer than
/// `max_line` bytes poisons the reader (overflowed() turns true, read_line
/// returns false) instead of growing without bound.
class LineReader {
 public:
  explicit LineReader(Socket& socket, std::size_t max_line = 1 << 20)
      : socket_(socket), max_line_(max_line) {}

  /// Next line without its '\n' (a final unterminated line is returned as
  /// is at EOF).  False on EOF, error, or overflow.
  bool read_line(std::string& line);

  [[nodiscard]] bool overflowed() const noexcept { return overflowed_; }

 private:
  Socket& socket_;
  std::size_t max_line_;
  std::string buffer_;
  std::size_t scan_from_ = 0;
  bool eof_ = false;
  bool overflowed_ = false;
};

/// Listening TCP socket bound to host:port (port 0 = ephemeral; the actual
/// port is reported by port()).  Throws std::runtime_error on bind failure.
class Listener {
 public:
  Listener(const std::string& host, std::uint16_t port, int backlog = 64);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accept one connection; an invalid Socket on timeout or after close().
  [[nodiscard]] Socket accept(int timeout_ms);

  /// Close the listening fd (a concurrent accept returns invalid).
  void close() noexcept { socket_.close(); }

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Client-side connect; an invalid Socket on failure.
[[nodiscard]] Socket connect_to(const std::string& host, std::uint16_t port);

}  // namespace hpm::serve
