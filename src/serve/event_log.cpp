#include "serve/event_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "harness/json_export.hpp"

namespace hpm::serve {
namespace {

void append_string(std::ostringstream& out, const char* key,
                   const std::string& value) {
  out << ",\"" << key << "\":\"" << harness::json_escape(value) << '"';
}

void append_int(std::ostringstream& out, const char* key, std::int64_t value) {
  out << ",\"" << key << "\":" << value;
}

}  // namespace

EventLog::EventLog(std::string path, bool include_timing)
    : path_(std::move(path)), include_timing_(include_timing) {
  if (path_.empty()) return;
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open event log " + path_ + ": " +
                             std::strerror(errno));
  }
}

EventLog::~EventLog() {
  if (fd_ >= 0) ::close(fd_);
}

std::string EventLog::format(const ServeEvent& event, std::uint64_t seq,
                             bool include_timing) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kEventSchema << "\",\"seq\":" << seq
      << ",\"event\":\"" << harness::json_escape(event.event) << '"';
  if (!event.trace.empty()) append_string(out, "trace", event.trace);
  if (!event.fingerprint.empty()) {
    append_string(out, "fingerprint", event.fingerprint);
  }
  if (!event.priority.empty()) append_string(out, "priority", event.priority);
  if (!event.client.empty()) append_string(out, "client", event.client);
  if (!event.reason.empty()) append_string(out, "reason", event.reason);
  if (!event.outcome.empty()) append_string(out, "outcome", event.outcome);
  if (event.queue_depth >= 0) {
    append_int(out, "queue_depth", event.queue_depth);
  }
  if (include_timing) {
    // The executor id is a scheduling artifact (which pool thread won the
    // pop), so it rides with the timing fields in determinism mode.
    if (event.executor >= 0) append_int(out, "executor", event.executor);
    if (event.queue_wait_us >= 0) {
      append_int(out, "queue_wait_us", event.queue_wait_us);
    }
    if (event.run_us >= 0) append_int(out, "run_us", event.run_us);
    if (event.total_us >= 0) append_int(out, "total_us", event.total_us);
    if (event.t_us >= 0) append_int(out, "t_us", event.t_us);
  }
  out << "}\n";
  return std::move(out).str();
}

void EventLog::append(const ServeEvent& event) {
  if (fd_ < 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string line = format(event, ++seq_, include_timing_);
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // degrade: lose observability, never block serving
    }
    written += static_cast<std::size_t>(n);
  }
  // No fsync: a single write() survives kill -9 (the page cache outlives
  // the process); only a power failure can lose the tail, and that is an
  // acceptable price for never stalling admission on the disk.
}

std::uint64_t EventLog::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

std::vector<harness::JsonValue> EventLog::replay(const std::string& path,
                                                 std::uint64_t* skipped) {
  if (skipped != nullptr) *skipped = 0;
  std::ifstream in(path);
  if (!in) return {};
  std::vector<harness::JsonValue> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    harness::JsonValue record;
    try {
      record = harness::JsonValue::parse(line);
    } catch (const std::exception&) {
      if (skipped != nullptr) ++*skipped;  // torn final write
      continue;
    }
    const harness::JsonValue* schema = record.find("schema");
    if (schema == nullptr || schema->kind() != harness::JsonValue::Kind::kString ||
        schema->str() != kEventSchema) {
      if (skipped != nullptr) ++*skipped;
      continue;
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace hpm::serve
