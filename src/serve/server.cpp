#include "serve/server.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "harness/batch.hpp"
#include "harness/json_export.hpp"
#include "harness/live_stream.hpp"
#include "harness/provenance.hpp"
#include "telemetry/trace_sink.hpp"

namespace hpm::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// Host-time anchor shared with the Chrome trace and the event log.
std::uint64_t wall_us() { return telemetry::WallSpan::now_us(); }

/// Trim trailing whitespace so spliced documents never break JSONL lines.
std::string compact_json(std::string json) {
  while (!json.empty() && (json.back() == '\n' || json.back() == '\r' ||
                           json.back() == ' ')) {
    json.pop_back();
  }
  return json;
}

/// Visit every waiter whose session is still alive.
template <typename Fn>
void for_each_waiter(Job& job, Fn&& fn) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard lock(job.waiters_mutex);
    waiters = job.waiters;
  }
  for (const Waiter& waiter : waiters) {
    if (auto session = waiter.session.lock(); session && !session->dead()) {
      fn(*session, waiter);
    }
  }
}

}  // namespace

bool Session::send(std::string_view line) {
  std::lock_guard lock(write_mutex_);
  if (dead_.load(std::memory_order_relaxed)) return false;
  if (!socket_.send_line(line)) {
    dead_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      listener_(options_.host, options_.port),
      journal_(options_.state_dir.empty()
                   ? std::string()
                   : options_.state_dir + "/serve_journal.jsonl"),
      queue_(AdmissionQueue::Config{
          options_.max_queue, options_.per_client_quota,
          options_.retry_after_base_ms, options_.retry_after_per_item_ms}),
      cache_(options_.cache_entries),
      pool_(std::make_unique<harness::ThreadPool>(
          options_.executors == 0 ? 1 : options_.executors)) {
  ObserveOptions observe;
  observe.enabled = options_.observe;
  observe.event_log_path = options_.state_dir.empty()
                               ? std::string()
                               : options_.state_dir + "/serve_events.jsonl";
  observe.event_timing = options_.event_timing;
  observe.executors = options_.executors == 0 ? 1 : options_.executors;
  if (options_.observe && !options_.trace_out_path.empty()) {
    trace_file_.open(options_.trace_out_path,
                     std::ios::out | std::ios::trunc);
    if (trace_file_) observe.trace_out = &trace_file_;
  }
  monitor_ = std::make_unique<ServerMonitor>(observe);
  if (!options_.state_dir.empty()) {
    const std::string journal_path = options_.state_dir + "/serve_journal.jsonl";
    std::vector<PendingRequest> pending = RequestJournal::recover(journal_path);
    RequestJournal::compact(journal_path, pending);
    admit_recovered(std::move(pending));
  }
}

Server::~Server() {
  stop_now();
  // run() normally joins everything; cover the constructed-but-never-run
  // case (tests that only exercise construction/recovery).
  pool_.reset();
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(mutex_);
    for (auto& [id, session] : sessions_) session->kick();
    threads.swap(session_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

std::uint16_t Server::port() const noexcept { return listener_.port(); }

void Server::admit_recovered(std::vector<PendingRequest> pending) {
  for (PendingRequest& request : pending) {
    auto job = std::make_shared<Job>();
    job->fingerprint = request.fingerprint;
    job->canonical_sweep = request.canonical_sweep;
    try {
      job->sweep = parse_canonical_sweep(request.canonical_sweep);
    } catch (const std::exception&) {
      journal_.end(request.fingerprint, "failed");
      continue;  // unreadable journal entry — tombstone it, don't crash
    }
    job->recovery = true;
    job->client = "__recovery";
    job->priority = Priority::kHigh;  // finish interrupted work first
    job->trace = "recover-" + job->fingerprint;
    job->accept_us = wall_us();
    if (!queue_.try_push(job).accepted) continue;  // cannot happen (recovery)
    {
      std::lock_guard lock(mutex_);
      inflight_[job->fingerprint] = job;
    }
    recovered_.fetch_add(1, std::memory_order_relaxed);
    monitor_->on_recover(job->fingerprint);
    pool_->submit([this] { execute_one(); });
  }
}

void Server::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    Socket client = listener_.accept(100);
    if (stop_.load(std::memory_order_relaxed)) break;
    if (client.valid()) {
      std::lock_guard lock(mutex_);
      const std::uint64_t id = next_session_id_++;
      auto session = std::make_shared<Session>(id, std::move(client));
      sessions_[id] = session;
      session_threads_.emplace_back(
          [this, session] { session_loop(session); });
    }
    if (draining_.load(std::memory_order_relaxed) && queue_.depth() == 0 &&
        running_.load(std::memory_order_relaxed) == 0) {
      break;
    }
  }
  listener_.close();
  // The pool destructor drains queued executor tasks: during a graceful
  // drain that finishes the admitted jobs; after stop_now the tasks see
  // the stop flag and return quickly.
  pool_.reset();
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(mutex_);
    for (auto& [id, session] : sessions_) session->kick();
    threads.swap(session_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

void Server::request_drain() {
  if (!draining_.exchange(true, std::memory_order_relaxed)) {
    monitor_->on_drain(wall_us());
  }
  queue_.begin_drain();
}

void Server::stop_now() {
  if (stop_.exchange(true)) return;
  draining_.store(true, std::memory_order_relaxed);
  queue_.begin_drain();
  std::lock_guard lock(mutex_);
  for (auto& [fingerprint, job] : inflight_) {
    job->cancel.store(true, std::memory_order_relaxed);
  }
}

ServerStats Server::stats() {
  ServerStats stats;
  stats.queue_depth = queue_.depth();
  stats.running = running_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    stats.sessions = sessions_.size();
  }
  stats.executors = options_.executors == 0 ? 1 : options_.executors;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.shed = queue_.shed_count();
  const std::array<std::uint64_t, 3> shed_by_class = queue_.shed_by_class();
  stats.shed_high = shed_by_class[static_cast<std::size_t>(Priority::kHigh)];
  stats.shed_normal =
      shed_by_class[static_cast<std::size_t>(Priority::kNormal)];
  stats.shed_low = shed_by_class[static_cast<std::size_t>(Priority::kLow)];
  stats.recovered = recovered_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.draining = draining_.load(std::memory_order_relaxed);
  const ServerMonitor::Snapshot snapshot = monitor_->snapshot();
  stats.queue_wait = snapshot.queue;
  stats.run = snapshot.run;
  stats.total = snapshot.total;
  return stats;
}

namespace {

void write_latency(harness::JsonWriter& w, std::string_view stage,
                   const telemetry::LatencySummary& summary) {
  w.key(stage).begin_object();
  w.key("count").value(static_cast<std::uint64_t>(summary.count));
  w.key("p50_ms").value(summary.p50);
  w.key("p95_ms").value(summary.p95);
  w.key("p99_ms").value(summary.p99);
  w.key("max_ms").value(summary.max);
  w.end_object();
}

}  // namespace

std::string Server::stats_line() {
  const ServerStats s = stats();
  std::ostringstream out;
  harness::JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.key("schema").value(kSchema);
  w.key("event").value("stats");
  w.key("queue_depth").value(static_cast<std::uint64_t>(s.queue_depth));
  w.key("running").value(static_cast<std::uint64_t>(s.running));
  w.key("sessions").value(static_cast<std::uint64_t>(s.sessions));
  w.key("executors").value(static_cast<std::uint64_t>(s.executors));
  w.key("accepted").value(s.accepted);
  w.key("coalesced").value(s.coalesced);
  w.key("completed").value(s.completed);
  w.key("shed").value(s.shed);
  w.key("shed_high").value(s.shed_high);
  w.key("shed_normal").value(s.shed_normal);
  w.key("shed_low").value(s.shed_low);
  w.key("recovered").value(s.recovered);
  w.key("cache_hits").value(s.cache_hits);
  w.key("cache_misses").value(s.cache_misses);
  w.key("draining").value(s.draining);
  w.key("latency").begin_object();
  write_latency(w, "queue", s.queue_wait);
  write_latency(w, "run", s.run);
  write_latency(w, "total", s.total);
  w.end_object();
  harness::write_meta(w, options_.include_build_meta);
  w.end_object();
  return std::move(out).str();
}

std::string Server::metrics_reply() {
  return metrics_line(monitor_->openmetrics());
}

void Server::session_loop(const std::shared_ptr<Session>& session) {
  monitor_->on_session_open();
  session->send(hello_line(options_.version, pool_ ? pool_->size() : 0,
                           draining_.load(std::memory_order_relaxed),
                           options_.include_build_meta));
  LineReader reader(session->socket());
  std::string line;
  while (!stop_.load(std::memory_order_relaxed) && reader.read_line(line)) {
    if (line.empty()) continue;
    harness::JsonValue op;
    try {
      op = harness::JsonValue::parse(line);
    } catch (const std::exception& e) {
      session->send(
          error_line("", "", std::string("malformed JSON: ") + e.what()));
      continue;
    }
    const harness::JsonValue* kind = op.find("op");
    if (kind == nullptr ||
        kind->kind() != harness::JsonValue::Kind::kString) {
      session->send(error_line("", "", "missing 'op'"));
      continue;
    }
    if (kind->str() == "submit") {
      handle_submit(session, op);
    } else if (kind->str() == "ping") {
      session->send(pong_line());
    } else if (kind->str() == "stats") {
      session->send(stats_line());
    } else if (kind->str() == "metrics") {
      session->send(metrics_reply());
    } else if (kind->str() == "drain") {
      request_drain();
      session->send("{\"schema\":\"hpm.serve.v1\",\"event\":\"draining\"}");
    } else {
      session->send(error_line("", "", "unknown op '" + kind->str() + "'"));
    }
  }
  // Disconnect: orphaned jobs must not burn executor time.  Queued jobs
  // with no remaining waiters are skipped when popped; a running one is
  // cancelled between runs.
  session->mark_closed();
  monitor_->on_session_close();
  {
    std::lock_guard lock(mutex_);
    sessions_.erase(session->id());
  }
  std::vector<std::shared_ptr<Job>> inflight;
  {
    std::lock_guard lock(mutex_);
    for (auto& [fingerprint, job] : inflight_) inflight.push_back(job);
  }
  for (const std::shared_ptr<Job>& job : inflight) {
    if (!job->recovery && job->abandoned()) {
      job->cancel.store(true, std::memory_order_relaxed);
    }
  }
}

void Server::handle_submit(const std::shared_ptr<Session>& session,
                           const harness::JsonValue& op) {
  // Best-effort id/trace for error reporting before full parsing succeeds.
  std::string id;
  if (const harness::JsonValue* raw = op.find("id");
      raw != nullptr && raw->kind() == harness::JsonValue::Kind::kString) {
    id = raw->str();
  }
  std::string trace;
  if (const harness::JsonValue* raw = op.find("trace");
      raw != nullptr && raw->kind() == harness::JsonValue::Kind::kString) {
    trace = raw->str();
  }
  ServeRequest request;
  std::vector<harness::RunSpec> specs;
  try {
    request = parse_request(op);
    specs = build_specs(request.sweep);  // validate up front: shed loudly
  } catch (const std::exception& e) {
    session->send(rejected_line(id, trace, "bad_request", 0, e.what()));
    return;
  }
  // Every admitted-or-shed request carries a trace id from here on:
  // client-supplied, or assigned in arrival order ("s1", "s2", ...) so a
  // sequential request sequence traces deterministically.
  trace = request.trace;
  if (trace.empty()) {
    trace = "s" + std::to_string(
                      next_trace_.fetch_add(1, std::memory_order_relaxed));
  }
  const std::string canonical = canonical_sweep_json(request.sweep);
  const std::string fingerprint = request_fingerprint(request.sweep);
  const bool has_deadline = request.deadline_ms > 0;
  if (request.client.empty()) {
    request.client = "session-" + std::to_string(session->id());
  }

  // Cache: a clean result for this exact canonical sweep replays instantly.
  // Deadline requests bypass the cache both ways (their runs may carry
  // wall budgets, so they neither read nor write shared results).
  if (!has_deadline) {
    if (auto hit = cache_.get(fingerprint)) {
      monitor_->on_cache_hit(trace, fingerprint, wall_us());
      session->send(accepted_line(request.id, trace, fingerprint,
                                  queue_.depth(), /*coalesced=*/false));
      session->send(result_line(request.id, trace, fingerprint,
                                /*cached=*/true, /*ok=*/true, /*failed=*/0,
                                /*queue_us=*/0, /*run_us=*/0, /*total_us=*/0,
                                *hit));
      return;
    }
  }

  // Coalesce: an identical sweep already queued or running gets this
  // client attached as a waiter instead of a duplicate run.  This also
  // resolves the restart race where a client re-submits a sweep the
  // recovery path is already replaying.
  if (!has_deadline) {
    std::lock_guard lock(mutex_);
    const auto it = inflight_.find(fingerprint);
    if (it != inflight_.end()) {
      {
        std::lock_guard waiters_lock(it->second->waiters_mutex);
        it->second->waiters.push_back(
            Waiter{session, request.id, trace, request.live_every});
      }
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      monitor_->on_coalesce(trace, fingerprint, wall_us());
      session->send(accepted_line(request.id, trace, fingerprint,
                                  queue_.depth(), /*coalesced=*/true));
      return;
    }
  }

  auto job = std::make_shared<Job>();
  job->fingerprint = fingerprint;
  job->canonical_sweep = canonical;
  job->sweep = request.sweep;
  job->priority = request.priority;
  job->client = request.client;
  job->trace = trace;
  if (has_deadline) {
    job->deadline =
        Clock::now() + std::chrono::milliseconds(request.deadline_ms);
  }
  {
    std::lock_guard lock(job->waiters_mutex);
    job->waiters.push_back(
        Waiter{session, request.id, trace, request.live_every});
  }

  const AdmissionQueue::Verdict verdict = queue_.try_push(job);
  if (!verdict.accepted) {
    monitor_->on_shed(trace, fingerprint,
                      std::string(priority_name(request.priority)),
                      request.client,
                      std::string(shed_reason_name(verdict.reason)),
                      wall_us());
    session->send(rejected_line(request.id, trace,
                                shed_reason_name(verdict.reason),
                                verdict.retry_after_ms, ""));
    return;
  }
  job->accept_us = wall_us();
  if (!has_deadline) {
    {
      std::lock_guard lock(mutex_);
      inflight_[fingerprint] = job;
    }
    journal_.begin(fingerprint, canonical);
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  monitor_->on_accept(trace, fingerprint,
                      std::string(priority_name(request.priority)),
                      request.client, verdict.depth, job->accept_us);
  session->send(accepted_line(request.id, trace, fingerprint, verdict.depth,
                              /*coalesced=*/false));
  pool_->submit([this] { execute_one(); });
}

void Server::execute_one() {
  std::shared_ptr<Job> job = queue_.try_pop();
  if (job == nullptr) return;
  const auto release = [&] {
    {
      std::lock_guard lock(mutex_);
      inflight_.erase(job->fingerprint);
    }
    queue_.job_finished(job->client);
  };
  if (stop_.load(std::memory_order_relaxed)) {
    // Hard stop: journaled sweeps stay pending, recovery replays them.
    release();
    return;
  }
  if (!job->recovery && job->abandoned()) {
    monitor_->on_abandon(job->trace, job->fingerprint, wall_us());
    journal_.end(job->fingerprint, "abandoned");
    release();
    return;
  }
  running_.fetch_add(1, std::memory_order_relaxed);
  run_job(job);
  running_.fetch_sub(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  release();
}

void Server::run_job(const std::shared_ptr<Job>& job) {
  // Stop coalescing onto this job BEFORE any terminal event goes out: a
  // client that reacts to its result/error by resubmitting must find the
  // cache (or start a fresh run), never attach to a job that already
  // broadcast.  execute_one() erases again afterwards — harmless.
  const auto retire = [&] {
    std::lock_guard lock(mutex_);
    inflight_.erase(job->fingerprint);
  };

  // Stage spans: queue wait ends (and the run span starts) here; the
  // breakdown travels on the result line and feeds the latency windows.
  const std::uint64_t start_us = wall_us();
  const std::uint64_t queue_wait_us =
      start_us > job->accept_us ? start_us - job->accept_us : 0;
  const int slot = monitor_->on_start(job->trace, job->fingerprint,
                                      queue_.depth(), queue_wait_us,
                                      start_us);
  const auto finish = [&](const char* outcome, std::uint64_t* run_out =
                                                   nullptr,
                          std::uint64_t* total_out = nullptr) {
    const std::uint64_t end_us = wall_us();
    const std::uint64_t run_us = end_us > start_us ? end_us - start_us : 0;
    const std::uint64_t total_us =
        end_us > job->accept_us ? end_us - job->accept_us : run_us;
    monitor_->on_finish(slot, job->trace, job->fingerprint, outcome,
                        queue_wait_us, run_us, total_us, start_us);
    if (run_out != nullptr) *run_out = run_us;
    if (total_out != nullptr) *total_out = total_us;
  };

  for_each_waiter(*job, [&](Session& session, const Waiter& waiter) {
    session.send(started_line(waiter.request_id, waiter.trace));
  });

  std::vector<harness::RunSpec> specs;
  try {
    specs = build_specs(job->sweep);
  } catch (const std::exception& e) {
    retire();
    finish("error");
    for_each_waiter(*job, [&](Session& session, const Waiter& waiter) {
      session.send(error_line(waiter.request_id, waiter.trace, e.what()));
    });
    if (!job->recovery) journal_.end(job->fingerprint, "failed");
    return;
  }

  const bool has_deadline = job->deadline != Clock::time_point::max();
  if (has_deadline) {
    // Deadline enforcement, two layers: each run gets a wall budget (an
    // in-flight run aborts itself via sim::BudgetExceeded) and the
    // progress hook below cancels queued runs once the deadline passes.
    const double remaining =
        std::chrono::duration<double>(job->deadline - Clock::now()).count();
    if (remaining <= 0) {
      job->cancel.store(true, std::memory_order_relaxed);
    } else {
      for (harness::RunSpec& spec : specs) {
        double& budget = spec.config.machine.wall_budget_seconds;
        if (budget <= 0 || remaining < budget) budget = remaining;
      }
    }
  }

  harness::BatchRunner::Options options;
  options.jobs = 1;  // per-sweep serial => byte-identical to hpmrun --jobs 1
  options.cancel = &job->cancel;
  options.resilience.retry.max_attempts = 1 + job->sweep.retries;

  harness::CheckpointLoad resume_load;
  std::string checkpoint_path;
  if (!options_.state_dir.empty() && !has_deadline) {
    checkpoint_path =
        options_.state_dir + "/ckpt-" + job->fingerprint + ".jsonl";
    options.resilience.checkpoint_path = checkpoint_path;
    try {
      resume_load = harness::load_checkpoint(checkpoint_path);
      options.resume = &resume_load;
    } catch (const std::exception&) {
      // No checkpoint yet (or unreadable) — run from the start.
    }
  }

  options.on_progress = [&](std::size_t done, std::size_t total,
                            const harness::BatchItem& item) {
    if (has_deadline && Clock::now() >= job->deadline) {
      job->cancel.store(true, std::memory_order_relaxed);
    }
    for_each_waiter(*job, [&](Session& session, const Waiter& waiter) {
      session.send(progress_line(waiter.request_id, waiter.trace, done,
                                 total, item.spec.name,
                                 harness::run_outcome_name(item.outcome)));
    });
  };

  std::uint64_t live_every = 0;
  {
    std::lock_guard lock(job->waiters_mutex);
    for (const Waiter& waiter : job->waiters) {
      live_every = std::max(live_every, waiter.live_every);
    }
  }
  harness::JsonlSink live_sink([&](std::string_view raw) {
    for_each_waiter(*job, [&](Session& session, const Waiter& waiter) {
      if (waiter.live_every > 0) {
        session.send(live_line(waiter.request_id, waiter.trace, raw));
      }
    });
  });
  if (live_every > 0) {
    options.live_sink = &live_sink;
    options.live_every_refs = live_every;
  }

  harness::BatchResult batch;
  try {
    batch = harness::BatchRunner(options).run(specs);
  } catch (const std::exception& first_error) {
    if (options.resume != nullptr) {
      // Stale or mismatched checkpoint (e.g. the journal outlived a spec
      // change): discard it and run the sweep clean.
      std::remove(checkpoint_path.c_str());
      options.resume = nullptr;
      try {
        batch = harness::BatchRunner(options).run(specs);
      } catch (const std::exception& e) {
        retire();
        finish("error");
        for_each_waiter(*job, [&](Session& session, const Waiter& waiter) {
          session.send(error_line(waiter.request_id, waiter.trace, e.what()));
        });
        if (!job->recovery) journal_.end(job->fingerprint, "failed");
        return;
      }
    } else {
      retire();
      finish("error");
      for_each_waiter(*job, [&](Session& session, const Waiter& waiter) {
        session.send(
            error_line(waiter.request_id, waiter.trace, first_error.what()));
      });
      if (!job->recovery) journal_.end(job->fingerprint, "failed");
      return;
    }
  }

  const bool cancelled = job->cancel.load(std::memory_order_relaxed);
  const std::size_t failed = batch.metrics.failed;
  harness::JsonExportOptions export_options;
  export_options.include_timing = false;  // byte-stable across runs
  export_options.indent = 0;              // compact for the wire
  const std::string result_json =
      compact_json(harness::to_json(batch, export_options));

  // Publish-then-broadcast: cache first, so a resubmit racing the result
  // event hits the cache instead of re-running (or hanging on a dead job).
  retire();
  if (failed == 0 && !has_deadline && !cancelled) {
    cache_.put(job->fingerprint, result_json);
  }

  std::uint64_t run_us = 0;
  std::uint64_t total_us = 0;
  finish(cancelled ? "cancelled" : (failed == 0 ? "ok" : "failed"), &run_us,
         &total_us);
  for_each_waiter(*job, [&](Session& session, const Waiter& waiter) {
    session.send(result_line(waiter.request_id, waiter.trace,
                             job->fingerprint, /*cached=*/false, failed == 0,
                             failed, queue_wait_us, run_us, total_us,
                             result_json));
  });

  if (has_deadline) return;  // deadline jobs are never journaled
  if (cancelled && stop_.load(std::memory_order_relaxed)) {
    // Interrupted by a hard stop: leave the journal pending and the
    // checkpoint in place so a restart resumes exactly here.
    return;
  }
  if (cancelled && job->abandoned()) {
    // Keep the checkpoint: a re-submit of the same sweep resumes it.
    journal_.end(job->fingerprint, "abandoned");
    return;
  }
  journal_.end(job->fingerprint, "done");
  if (!checkpoint_path.empty()) std::remove(checkpoint_path.c_str());
}

}  // namespace hpm::serve
