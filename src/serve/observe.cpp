#include "serve/observe.hpp"

#include <sstream>

namespace hpm::serve {
namespace {

using telemetry::Reducer;

// Gauge idiom: a kSum metric's value is its latest cumulative input, so
// feeding the *current* level (queue depth, open sessions, running
// executors) exposes it as a plain gauge while window still shows the
// per-scrape delta.
constexpr double kMsPerUs = 1.0 / 1000.0;

std::string executor_name(std::size_t slot) {
  return "exec" + std::to_string(slot);
}

}  // namespace

ServerMonitor::ServerMonitor(const ObserveOptions& options)
    : options_(options),
      tree_("server", "server"),
      queue_ms_(options.latency_window),
      run_ms_(options.latency_window),
      total_ms_(options.latency_window),
      slot_busy_(options.executors > 0 ? options.executors : 1, false),
      slot_completed_(slot_busy_.size(), 0) {
  if (!options_.enabled) return;
  if (!options_.event_log_path.empty()) {
    event_log_ = std::make_unique<EventLog>(options_.event_log_path,
                                            options_.event_timing);
  }
  if (options_.trace_out != nullptr) {
    trace_sink_ = std::make_unique<telemetry::ChromeTraceSink>(
        *options_.trace_out);
  }

  // Declare the whole topology up front so the exposition's shape (and
  // ordering — insertion order is iteration order) is independent of
  // traffic.
  telemetry::MonitorNode& root = tree_.root();
  telemetry::MonitorNode& sessions = root.child("sessions", "sessions");
  sessions.metric("connected", Reducer::kSum);
  sessions.metric("opened", Reducer::kSum);

  telemetry::MonitorNode& queue = root.child("queue", "queue");
  queue.metric("depth", Reducer::kSum);
  queue.metric("accepted", Reducer::kSum);
  queue.metric("shed", Reducer::kSum);
  queue.metric("shed_high", Reducer::kSum);
  queue.metric("shed_normal", Reducer::kSum);
  queue.metric("shed_low", Reducer::kSum);
  queue.metric("coalesced", Reducer::kSum);
  queue.metric("abandoned", Reducer::kSum);
  queue.metric("recovered", Reducer::kSum);

  telemetry::MonitorNode& pool = root.child("executors", "pool");
  pool.metric("capacity", Reducer::kSum);
  pool.metric("utilization", Reducer::kSum);
  pool.input("capacity", static_cast<double>(slot_busy_.size()));
  for (std::size_t slot = 0; slot < slot_busy_.size(); ++slot) {
    telemetry::MonitorNode& exec = pool.child(executor_name(slot), "executor");
    exec.metric("running", Reducer::kSum);
    exec.metric("completed", Reducer::kSum);
  }

  telemetry::MonitorNode& cache = root.child("cache", "cache");
  cache.metric("hits", Reducer::kSum);
  cache.metric("misses", Reducer::kSum);
  cache.metric("lookups", Reducer::kSum);
  cache.ratio("hit_ratio", "hits", "lookups");

  telemetry::MonitorNode& latency = root.child("latency", "latency");
  for (const char* name :
       {"queue_p50_ms", "queue_p95_ms", "queue_p99_ms", "run_p50_ms",
        "run_p95_ms", "run_p99_ms", "total_p50_ms", "total_p95_ms",
        "total_p99_ms"}) {
    latency.metric(name, Reducer::kSum);
  }
}

ServerMonitor::~ServerMonitor() { close_trace(); }

void ServerMonitor::close_trace() {
  if (trace_sink_) trace_sink_->close();
}

void ServerMonitor::log(const ServeEvent& event) {
  if (event_log_) event_log_->append(event);
}

void ServerMonitor::instant(std::string_view name, const std::string& trace,
                            const std::string& fingerprint,
                            std::uint64_t now_us) {
  if (!trace_sink_) return;
  telemetry::TraceEvent event;
  event.category = "serve";
  event.name = name;
  event.phase = 'i';
  event.ts = now_us;
  event.pid = 1;  // admission track
  event.tid = 0;
  if (!trace.empty()) event.args.emplace_back("trace", trace);
  if (!fingerprint.empty()) {
    event.args.emplace_back("fingerprint", fingerprint);
  }
  trace_sink_->event(event);
}

void ServerMonitor::on_session_open() {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++sessions_open_;
  ++sessions_total_;
  telemetry::MonitorNode& sessions = tree_.root().child("sessions", "sessions");
  sessions.input("connected", static_cast<double>(sessions_open_));
  sessions.input("opened", static_cast<double>(sessions_total_));
}

void ServerMonitor::on_session_close() {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_open_ > 0) --sessions_open_;
  tree_.root()
      .child("sessions", "sessions")
      .input("connected", static_cast<double>(sessions_open_));
}

void ServerMonitor::on_accept(const std::string& trace,
                              const std::string& fingerprint,
                              const std::string& priority,
                              const std::string& client,
                              std::size_t queue_depth, std::uint64_t now_us) {
  if (!options_.enabled) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++accepted_;
    ++cache_lookups_;
    telemetry::MonitorNode& queue = tree_.root().child("queue", "queue");
    queue.input("accepted", static_cast<double>(accepted_));
    queue.input("depth", static_cast<double>(queue_depth));
    tree_.root()
        .child("cache", "cache")
        .input("lookups", static_cast<double>(cache_lookups_));
    tree_.root()
        .child("cache", "cache")
        .input("misses",
               static_cast<double>(cache_lookups_ - cache_hits_));
    if (trace_sink_) {
      telemetry::TraceEvent depth_event;
      depth_event.category = "serve";
      depth_event.name = "queue_depth";
      depth_event.phase = 'C';
      depth_event.ts = now_us;
      depth_event.pid = 1;
      depth_event.args.emplace_back("depth",
                                    static_cast<std::uint64_t>(queue_depth));
      trace_sink_->event(depth_event);
    }
  }
  instant("accept", trace, fingerprint, now_us);
  ServeEvent event;
  event.event = "accept";
  event.trace = trace;
  event.fingerprint = fingerprint;
  event.priority = priority;
  event.client = client;
  event.queue_depth = static_cast<std::int64_t>(queue_depth);
  event.t_us = static_cast<std::int64_t>(now_us);
  log(event);
}

void ServerMonitor::on_shed(const std::string& trace,
                            const std::string& fingerprint,
                            const std::string& priority,
                            const std::string& client,
                            const std::string& reason, std::uint64_t now_us) {
  if (!options_.enabled) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t* counter = &shed_normal_;
    const char* metric = "shed_normal";
    if (priority == "high") {
      counter = &shed_high_;
      metric = "shed_high";
    } else if (priority == "low") {
      counter = &shed_low_;
      metric = "shed_low";
    }
    ++*counter;
    ++cache_lookups_;
    telemetry::MonitorNode& queue = tree_.root().child("queue", "queue");
    queue.input(metric, static_cast<double>(*counter));
    queue.input("shed",
                static_cast<double>(shed_high_ + shed_normal_ + shed_low_));
    tree_.root()
        .child("cache", "cache")
        .input("lookups", static_cast<double>(cache_lookups_));
    tree_.root()
        .child("cache", "cache")
        .input("misses",
               static_cast<double>(cache_lookups_ - cache_hits_));
  }
  instant("shed", trace, fingerprint, now_us);
  ServeEvent event;
  event.event = "shed";
  event.trace = trace;
  event.fingerprint = fingerprint;
  event.priority = priority;
  event.client = client;
  event.reason = reason;
  event.t_us = static_cast<std::int64_t>(now_us);
  log(event);
}

void ServerMonitor::on_coalesce(const std::string& trace,
                                const std::string& fingerprint,
                                std::uint64_t now_us) {
  if (!options_.enabled) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++coalesced_;
    ++cache_lookups_;
    tree_.root()
        .child("queue", "queue")
        .input("coalesced", static_cast<double>(coalesced_));
    tree_.root()
        .child("cache", "cache")
        .input("lookups", static_cast<double>(cache_lookups_));
    tree_.root()
        .child("cache", "cache")
        .input("misses",
               static_cast<double>(cache_lookups_ - cache_hits_));
  }
  instant("coalesce", trace, fingerprint, now_us);
  ServeEvent event;
  event.event = "coalesce";
  event.trace = trace;
  event.fingerprint = fingerprint;
  event.t_us = static_cast<std::int64_t>(now_us);
  log(event);
}

void ServerMonitor::on_cache_hit(const std::string& trace,
                                 const std::string& fingerprint,
                                 std::uint64_t now_us) {
  if (!options_.enabled) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++cache_hits_;
    ++cache_lookups_;
    telemetry::MonitorNode& cache = tree_.root().child("cache", "cache");
    cache.input("hits", static_cast<double>(cache_hits_));
    cache.input("lookups", static_cast<double>(cache_lookups_));
    cache.input("misses",
                static_cast<double>(cache_lookups_ - cache_hits_));
  }
  instant("cache_hit", trace, fingerprint, now_us);
  ServeEvent event;
  event.event = "cache_hit";
  event.trace = trace;
  event.fingerprint = fingerprint;
  event.t_us = static_cast<std::int64_t>(now_us);
  log(event);
}

int ServerMonitor::on_start(const std::string& trace,
                            const std::string& fingerprint,
                            std::size_t queue_depth,
                            std::uint64_t queue_wait_us,
                            std::uint64_t now_us) {
  if (!options_.enabled) return -1;
  int slot = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < slot_busy_.size(); ++i) {
      if (!slot_busy_[i]) {
        slot = static_cast<int>(i);
        break;
      }
    }
    if (slot < 0) {  // more concurrent runs than declared executors
      slot = static_cast<int>(slot_busy_.size());
      slot_busy_.push_back(false);
      slot_completed_.push_back(0);
      telemetry::MonitorNode& exec =
          tree_.root()
              .child("executors", "pool")
              .child(executor_name(static_cast<std::size_t>(slot)),
                     "executor");
      exec.metric("running", Reducer::kSum);
      exec.metric("completed", Reducer::kSum);
    }
    slot_busy_[static_cast<std::size_t>(slot)] = true;
    ++running_;
    telemetry::MonitorNode& pool = tree_.root().child("executors", "pool");
    pool.child(executor_name(static_cast<std::size_t>(slot)), "executor")
        .input("running", 1.0);
    pool.input("utilization", static_cast<double>(running_) /
                                  static_cast<double>(slot_busy_.size()));
    tree_.root()
        .child("queue", "queue")
        .input("depth", static_cast<double>(queue_depth));
    if (trace_sink_) {
      telemetry::TraceEvent depth_event;
      depth_event.category = "serve";
      depth_event.name = "queue_depth";
      depth_event.phase = 'C';
      depth_event.ts = now_us;
      depth_event.pid = 1;
      depth_event.args.emplace_back("depth",
                                    static_cast<std::uint64_t>(queue_depth));
      trace_sink_->event(depth_event);
    }
  }
  ServeEvent event;
  event.event = "start";
  event.trace = trace;
  event.fingerprint = fingerprint;
  event.executor = slot;
  event.queue_wait_us = static_cast<std::int64_t>(queue_wait_us);
  event.t_us = static_cast<std::int64_t>(now_us);
  log(event);
  return slot;
}

void ServerMonitor::on_finish(int slot, const std::string& trace,
                              const std::string& fingerprint,
                              const std::string& outcome,
                              std::uint64_t queue_wait_us,
                              std::uint64_t run_us, std::uint64_t total_us,
                              std::uint64_t start_us) {
  if (!options_.enabled) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_ms_.record(static_cast<double>(queue_wait_us) * kMsPerUs);
    run_ms_.record(static_cast<double>(run_us) * kMsPerUs);
    total_ms_.record(static_cast<double>(total_us) * kMsPerUs);
    if (slot >= 0 && static_cast<std::size_t>(slot) < slot_busy_.size()) {
      const auto index = static_cast<std::size_t>(slot);
      slot_busy_[index] = false;
      if (running_ > 0) --running_;
      ++slot_completed_[index];
      telemetry::MonitorNode& pool = tree_.root().child("executors", "pool");
      telemetry::MonitorNode& exec =
          pool.child(executor_name(index), "executor");
      exec.input("running", 0.0);
      exec.input("completed", static_cast<double>(slot_completed_[index]));
      pool.input("utilization", static_cast<double>(running_) /
                                    static_cast<double>(slot_busy_.size()));
    }
    if (trace_sink_ && slot >= 0) {
      telemetry::TraceEvent span;
      span.category = "serve";
      span.name = "run";
      span.phase = 'X';
      span.ts = start_us;
      span.dur = run_us;
      span.pid = 0;  // executor plane, one track per slot
      span.tid = static_cast<std::uint32_t>(slot);
      span.args.emplace_back("trace", trace);
      span.args.emplace_back("fingerprint", fingerprint);
      span.args.emplace_back("outcome", outcome);
      span.args.emplace_back("queue_wait_us", queue_wait_us);
      trace_sink_->event(span);
    }
  }
  ServeEvent event;
  event.event = "finish";
  event.trace = trace;
  event.fingerprint = fingerprint;
  event.outcome = outcome;
  event.executor = slot;
  event.queue_wait_us = static_cast<std::int64_t>(queue_wait_us);
  event.run_us = static_cast<std::int64_t>(run_us);
  event.total_us = static_cast<std::int64_t>(total_us);
  event.t_us = static_cast<std::int64_t>(start_us + run_us);
  log(event);
}

void ServerMonitor::on_abandon(const std::string& trace,
                               const std::string& fingerprint,
                               std::uint64_t now_us) {
  if (!options_.enabled) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++abandoned_;
    tree_.root()
        .child("queue", "queue")
        .input("abandoned", static_cast<double>(abandoned_));
  }
  instant("abandon", trace, fingerprint, now_us);
  ServeEvent event;
  event.event = "abandon";
  event.trace = trace;
  event.fingerprint = fingerprint;
  event.t_us = static_cast<std::int64_t>(now_us);
  log(event);
}

void ServerMonitor::on_recover(const std::string& fingerprint) {
  if (!options_.enabled) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++recovered_;
    tree_.root()
        .child("queue", "queue")
        .input("recovered", static_cast<double>(recovered_));
  }
  ServeEvent event;
  event.event = "recover";
  event.fingerprint = fingerprint;
  log(event);
}

void ServerMonitor::on_drain(std::uint64_t now_us) {
  if (!options_.enabled) return;
  instant("drain", std::string(), std::string(), now_us);
  ServeEvent event;
  event.event = "drain";
  event.t_us = static_cast<std::int64_t>(now_us);
  log(event);
}

void ServerMonitor::feed_latency_gauges_locked() {
  telemetry::MonitorNode& latency = tree_.root().child("latency", "latency");
  const telemetry::LatencySummary queue = queue_ms_.summary();
  const telemetry::LatencySummary run = run_ms_.summary();
  const telemetry::LatencySummary total = total_ms_.summary();
  latency.input("queue_p50_ms", queue.p50);
  latency.input("queue_p95_ms", queue.p95);
  latency.input("queue_p99_ms", queue.p99);
  latency.input("run_p50_ms", run.p50);
  latency.input("run_p95_ms", run.p95);
  latency.input("run_p99_ms", run.p99);
  latency.input("total_p50_ms", total.p50);
  latency.input("total_p95_ms", total.p95);
  latency.input("total_p99_ms", total.p99);
}

std::string ServerMonitor::openmetrics() {
  std::lock_guard<std::mutex> lock(mutex_);
  // A disabled plane still answers the op — the tree simply has no
  // metrics declared, so the exposition is just the header and "# EOF"
  // and clients need not special-case --no-observe servers.
  if (options_.enabled) feed_latency_gauges_locked();
  tree_.sample();
  std::ostringstream out;
  telemetry::write_openmetrics(out, tree_);
  return std::move(out).str();
}

ServerMonitor::Snapshot ServerMonitor::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snapshot;
  snapshot.queue = queue_ms_.summary();
  snapshot.run = run_ms_.summary();
  snapshot.total = total_ms_.summary();
  snapshot.events_logged = event_log_ ? event_log_->count() : 0;
  return snapshot;
}

}  // namespace hpm::serve
