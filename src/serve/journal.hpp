// hpmserve crash-recovery journal (hpm.serve.journal.v1).
//
// An append-only JSONL ledger of accepted work:
//
//   {"schema":"hpm.serve.journal.v1","op":"begin",
//    "fingerprint":"<16 hex>","sweep":{...canonical sweep...}}
//   {"schema":"hpm.serve.journal.v1","op":"end",
//    "fingerprint":"<16 hex>","status":"done"}
//
// Every line is fsynced before the server acts on it, so after a kill -9
// the set {begins without a matching end} is exactly the set of accepted
// sweeps whose results were never delivered.  On restart the server
// replays those sweeps; each one resumes from its own hpm.checkpoint.v1
// file (ckpt-<fingerprint>.jsonl next to the journal), so completed runs
// are adopted, not recomputed, and the recovered result is byte-identical
// to an uninterrupted one.  recover() tolerates a truncated final line —
// the writer may have died mid-append.  On startup the journal is
// compacted (atomically rewritten with only the still-pending begins) so
// it does not grow without bound across restarts.
#pragma once

#include <string>
#include <vector>

namespace hpm::serve {

/// One accepted-but-unfinished sweep found in the journal.
struct PendingRequest {
  std::string fingerprint;
  std::string canonical_sweep;  ///< compact hpm.serve.sweep.v1 JSON
};

class RequestJournal {
 public:
  /// Opens (appending) the journal at `path`; empty path disables every
  /// method.  Throws std::runtime_error when the path is not writable —
  /// a crash-safe server must fail at startup, not at the first submit.
  explicit RequestJournal(std::string path);

  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }

  /// Record acceptance of a sweep (fsynced before returning).
  void begin(const std::string& fingerprint,
             const std::string& canonical_sweep);

  /// Record completion: status is "done", "failed" or "abandoned".
  void end(const std::string& fingerprint, const std::string& status);

  /// Scan a journal for begins without a matching end.  Malformed or
  /// truncated lines are skipped.  Missing file = nothing pending.
  [[nodiscard]] static std::vector<PendingRequest> recover(
      const std::string& path);

  /// Atomically rewrite the journal to contain only `pending` begins.
  static void compact(const std::string& path,
                      const std::vector<PendingRequest>& pending);

 private:
  void append_line(const std::string& line);

  std::string path_;
};

}  // namespace hpm::serve
