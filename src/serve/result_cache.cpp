#include "serve/result_cache.hpp"

namespace hpm::serve {

std::optional<std::string> ResultCache::get(const std::string& fingerprint) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return it->second->result_json;
}

void ResultCache::put(const std::string& fingerprint, std::string result_json) {
  if (max_entries_ == 0) return;
  std::lock_guard lock(mutex_);
  const auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    it->second->result_json = std::move(result_json);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{fingerprint, std::move(result_json)});
  index_[fingerprint] = lru_.begin();
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().fingerprint);
    lru_.pop_back();
  }
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

}  // namespace hpm::serve
