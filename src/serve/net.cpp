#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace hpm::serve {

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::send_all(std::string_view data) noexcept {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::send_line(std::string_view line) noexcept {
  // One send per line keeps concurrent writers line-atomic at the syscall
  // boundary (the server additionally serializes per-session writes).
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  return send_all(framed);
}

void Socket::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool LineReader::read_line(std::string& line) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n', scan_from_);
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      scan_from_ = 0;
      return true;
    }
    scan_from_ = buffer_.size();
    if (buffer_.size() > max_line_) {
      overflowed_ = true;
      return false;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      line = std::move(buffer_);  // unterminated trailing line
      buffer_.clear();
      scan_from_ = 0;
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Listener::Listener(const std::string& host, std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  socket_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("invalid listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw std::runtime_error("bind " + host + ":" + std::to_string(port) +
                             ": " + std::strerror(errno));
  }
  if (::listen(fd, backlog) != 0) {
    throw std::runtime_error(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
}

Socket Listener::accept(int timeout_ms) {
  const int fd = socket_.fd();
  if (fd < 0) return Socket();
  pollfd pfd{fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return Socket();
  const int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) return Socket();
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(client);
}

Socket connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket();
  Socket socket(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return Socket();
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Socket();
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

}  // namespace hpm::serve
