#include "serve/admission.hpp"

#include "serve/server.hpp"

namespace hpm::serve {

bool Job::abandoned() {
  std::lock_guard lock(waiters_mutex);
  for (const Waiter& waiter : waiters) {
    // A waiter counts while its session object is alive AND its socket has
    // not been closed — the reader thread may still hold the shared_ptr
    // after disconnect, so expiry alone is not enough.
    if (auto session = waiter.session.lock(); session && !session->dead()) {
      return false;
    }
  }
  return true;
}

std::string_view shed_reason_name(ShedReason reason) noexcept {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kOverQuota:
      return "over_quota";
    case ShedReason::kDraining:
      return "draining";
  }
  return "queue_full";
}

AdmissionQueue::Verdict AdmissionQueue::try_push(
    const std::shared_ptr<Job>& job) {
  std::lock_guard lock(mutex_);
  std::size_t depth = 0;
  for (const auto& cls : classes_) depth += cls.size();

  const auto shed = [&](ShedReason reason) {
    ++shed_;
    ++shed_by_class_[static_cast<std::size_t>(job->priority)];
    Verdict verdict;
    verdict.accepted = false;
    verdict.reason = reason;
    // Backlog-proportional hint: an empty queue says "come right back", a
    // full one scales the wait with the work ahead of the retry.
    verdict.retry_after_ms = config_.retry_after_base_ms +
                             depth * config_.retry_after_per_item_ms;
    verdict.depth = depth;
    return verdict;
  };

  if (draining_ && !job->recovery) return shed(ShedReason::kDraining);
  if (depth >= config_.max_depth && !job->recovery) {
    return shed(ShedReason::kQueueFull);
  }
  if (config_.per_client_quota > 0 && !job->recovery &&
      client_load_[job->client] >= config_.per_client_quota) {
    return shed(ShedReason::kOverQuota);
  }

  classes_[static_cast<std::size_t>(job->priority)].push_back(job);
  ++client_load_[job->client];
  Verdict verdict;
  verdict.accepted = true;
  verdict.depth = depth + 1;
  return verdict;
}

std::shared_ptr<Job> AdmissionQueue::try_pop() {
  std::lock_guard lock(mutex_);
  for (auto& cls : classes_) {
    if (!cls.empty()) {
      std::shared_ptr<Job> job = std::move(cls.front());
      cls.pop_front();
      return job;
    }
  }
  return nullptr;
}

void AdmissionQueue::job_finished(const std::string& client) {
  std::lock_guard lock(mutex_);
  const auto it = client_load_.find(client);
  if (it == client_load_.end()) return;
  if (it->second <= 1) {
    client_load_.erase(it);
  } else {
    --it->second;
  }
}

void AdmissionQueue::begin_drain() {
  std::lock_guard lock(mutex_);
  draining_ = true;
}

bool AdmissionQueue::draining() const {
  std::lock_guard lock(mutex_);
  return draining_;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard lock(mutex_);
  std::size_t depth = 0;
  for (const auto& cls : classes_) depth += cls.size();
  return depth;
}

std::uint64_t AdmissionQueue::shed_count() const {
  std::lock_guard lock(mutex_);
  return shed_;
}

std::array<std::uint64_t, 3> AdmissionQueue::shed_by_class() const {
  std::lock_guard lock(mutex_);
  return shed_by_class_;
}

}  // namespace hpm::serve
