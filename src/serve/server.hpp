// hpmserve: a fault-tolerant long-running experiment service.
//
// Architecture (docs/hpmserve.md):
//
//   clients ──TCP──▶ session threads ──▶ AdmissionQueue ──▶ ThreadPool
//                        │  (parse, admit/shed, coalesce)      executors
//                        ◀── hello/accepted/rejected/started/progress/
//                            live/result/error events (hpm.serve.v1)
//
// Robustness properties, each pinned by tests/serve_test.cpp:
//  * Bounded admission with priority classes and per-client quotas; at
//    overload every excess submit gets an explicit rejected event with a
//    retry_after_ms hint — sheds are reported, never dropped.
//  * Per-request deadlines cancel remaining runs via the batch cancel
//    flag plus per-run wall budgets (sim::BudgetExceeded).
//  * Client disconnects abandon orphaned work: queued jobs are skipped,
//    running jobs are cancelled between runs.
//  * Graceful drain (SIGTERM): stop admitting, finish queued work, flush
//    journals, then exit.
//  * Crash recovery: accepted sweeps are journaled (hpm.serve.journal.v1)
//    and checkpointed (hpm.checkpoint.v1); on restart, unfinished sweeps
//    replay and resume from their checkpoints, producing results
//    byte-identical to an uninterrupted run.
//  * Result cache keyed by the canonical request fingerprint: identical
//    requests — including concurrent ones, which coalesce onto one run —
//    are answered once.
//
// Determinism: every job executes with jobs=1 on its own BatchRunner and
// exports with timing omitted, so a served result is byte-for-byte the
// document `hpmrun --jobs 1 --no-timing --out` writes for the same sweep.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <fstream>

#include "harness/thread_pool.hpp"
#include "serve/admission.hpp"
#include "serve/journal.hpp"
#include "serve/net.hpp"
#include "serve/observe.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"

namespace hpm::serve {

/// One connected client.  Writes are serialized per session so executor
/// broadcasts and session replies never interleave mid-line.
class Session {
 public:
  Session(std::uint64_t id, Socket socket)
      : id_(id), socket_(std::move(socket)) {}

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] Socket& socket() noexcept { return socket_; }

  /// Send one protocol line; false (and dead() from then on) when the
  /// peer is gone.
  bool send(std::string_view line);

  [[nodiscard]] bool dead() const noexcept {
    return dead_.load(std::memory_order_relaxed);
  }

  /// Wake a blocked reader (shutdown both directions).
  void kick() { socket_.shutdown(); }

  /// Mark the session gone (reader saw EOF); waiters stop counting it.
  void mark_closed() { dead_.store(true, std::memory_order_relaxed); }

 private:
  std::uint64_t id_;
  Socket socket_;
  std::mutex write_mutex_;
  std::atomic<bool> dead_{false};
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (Server::port() reports it)
  unsigned executors = 2;  ///< concurrent jobs (each runs its sweep jobs=1)
  std::size_t max_queue = 16;
  std::size_t per_client_quota = 0;  ///< 0 = unlimited
  /// Durable state directory (recovery journal + per-sweep checkpoints);
  /// empty disables persistence and crash recovery.
  std::string state_dir;
  std::size_t cache_entries = 64;
  std::uint64_t retry_after_base_ms = 200;
  std::uint64_t retry_after_per_item_ms = 50;
  std::string version = "1";
  // -- Observability plane (src/serve/observe.hpp) --------------------------
  /// Master switch; false turns every monitor hook into a no-op (the bench
  /// guardrail measures exactly this on-vs-off delta).
  bool observe = true;
  /// Wall-clock fields (and executor ids) in hpm.serve.events.v1 records;
  /// false = determinism mode: identical request sequences log identical
  /// bytes at any executor count.
  bool event_timing = true;
  /// Chrome trace_event output path; empty = off.
  std::string trace_out_path;
  /// Volatile build block inside the hello/stats "meta"; off for goldens.
  bool include_build_meta = true;
};

/// Point-in-time server statistics (the "stats" op's payload).
struct ServerStats {
  std::size_t queue_depth = 0;
  std::size_t running = 0;
  std::size_t sessions = 0;   ///< currently connected clients
  std::size_t executors = 0;  ///< pool size
  std::uint64_t accepted = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t shed_high = 0;
  std::uint64_t shed_normal = 0;
  std::uint64_t shed_low = 0;
  std::uint64_t recovered = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  bool draining = false;
  /// Per-stage latency digests (ms), from the observability plane; all
  /// zero when the plane is disabled.
  telemetry::LatencySummary queue_wait;
  telemetry::LatencySummary run;
  telemetry::LatencySummary total;
};

class Server {
 public:
  /// Binds the listener and replays the recovery journal (pending sweeps
  /// are re-admitted before the first client connects).  Throws
  /// std::runtime_error when the port or state dir is unusable.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Accept/serve until drained or stopped.  Blocks.
  void run();

  /// Begin graceful drain: reject new submits with reason "draining",
  /// finish queued and running work, then run() returns.  Signal-safe
  /// enough for a SIGTERM handler via a relay flag (see tools/hpmserve).
  void request_drain();

  /// Hard stop for tests: cancel running jobs, drop queued ones
  /// (journaled sweeps stay pending for recovery), unblock run().
  void stop_now();

  [[nodiscard]] ServerStats stats();

  /// The observability plane (always constructed; a no-op when
  /// options.observe is false).  Exposed for tests and the bench.
  [[nodiscard]] ServerMonitor& monitor() noexcept { return *monitor_; }

 private:
  void session_loop(const std::shared_ptr<Session>& session);
  void handle_submit(const std::shared_ptr<Session>& session,
                     const harness::JsonValue& op);
  void execute_one();
  void run_job(const std::shared_ptr<Job>& job);
  void broadcast(Job& job, const std::string& line);
  void admit_recovered(std::vector<PendingRequest> pending);
  [[nodiscard]] std::string stats_line();
  [[nodiscard]] std::string metrics_reply();

  ServerOptions options_;
  Listener listener_;
  RequestJournal journal_;
  AdmissionQueue queue_;
  ResultCache cache_;
  std::ofstream trace_file_;  ///< backs --trace-out; outlives monitor_
  std::unique_ptr<ServerMonitor> monitor_;
  std::unique_ptr<harness::ThreadPool> pool_;

  std::mutex mutex_;  ///< guards inflight_, sessions_, session_threads_
  /// fingerprint -> job accepted but not finished (coalescing target).
  std::unordered_map<std::string, std::shared_ptr<Job>> inflight_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> session_threads_;
  std::uint64_t next_session_id_ = 1;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> running_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> recovered_{0};
  /// Server-assigned trace ids ("s1", "s2", ...) for submits without one.
  std::atomic<std::uint64_t> next_trace_{1};
};

}  // namespace hpm::serve
