// The hpmserve observability plane: one object owning every "watch the
// server" concern so the serving path stays a sequence of cheap hook
// calls.
//
// A ServerMonitor fans each lifecycle transition out to three sinks:
//   * a telemetry::MonitorTree mirroring the server topology
//     (server -> sessions / queue / executors / cache / latency) whose
//     OpenMetrics exposition backs the `metrics` op,
//   * the hpm.serve.events.v1 structured event log (event_log.hpp),
//   * an optional Chrome-trace sink (--trace-out): one 'X' span per
//     executed request on its executor's track, instants for
//     accept/shed/coalesce/cache-hit on the admission track, and a
//     queue-depth counter series.
//
// The paper's discipline applies to our own serving layer: observation
// must be cheap enough to leave on.  Hooks do no I/O besides one
// unsynced write() (event log) and touch one mutex; the whole plane can
// be disabled (enabled=false) for the bench guardrail that pins the
// overhead < 2%.
//
// Thread model: hooks are called from session threads and executor
// threads concurrently.  One internal mutex guards the tree, the latency
// windows and the trace sink; the event log has its own line-atomic lock.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "serve/event_log.hpp"
#include "telemetry/monitor_tree.hpp"
#include "telemetry/quantiles.hpp"
#include "telemetry/trace_sink.hpp"

namespace hpm::serve {

struct ObserveOptions {
  bool enabled = true;          ///< false = every hook is a no-op (guardrail)
  std::string event_log_path;   ///< empty = no event log
  bool event_timing = true;     ///< false = determinism mode (see event_log)
  std::ostream* trace_out = nullptr;  ///< Chrome trace stream; caller owns
  std::size_t executors = 1;
  std::size_t latency_window = 4096;  ///< samples retained per stage
};

class ServerMonitor {
 public:
  explicit ServerMonitor(const ObserveOptions& options);
  ~ServerMonitor();

  ServerMonitor(const ServerMonitor&) = delete;
  ServerMonitor& operator=(const ServerMonitor&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return options_.enabled; }

  // -- Lifecycle hooks (all no-ops when disabled) ---------------------------
  void on_session_open();
  void on_session_close();
  void on_accept(const std::string& trace, const std::string& fingerprint,
                 const std::string& priority, const std::string& client,
                 std::size_t queue_depth, std::uint64_t now_us);
  void on_shed(const std::string& trace, const std::string& fingerprint,
               const std::string& priority, const std::string& client,
               const std::string& reason, std::uint64_t now_us);
  void on_coalesce(const std::string& trace, const std::string& fingerprint,
                   std::uint64_t now_us);
  void on_cache_hit(const std::string& trace, const std::string& fingerprint,
                    std::uint64_t now_us);
  /// Request left the queue for an executor.  Returns the executor slot
  /// (smallest free index — deterministic for sequential traffic) to pass
  /// back to on_finish; -1 when disabled.
  int on_start(const std::string& trace, const std::string& fingerprint,
               std::size_t queue_depth, std::uint64_t queue_wait_us,
               std::uint64_t now_us);
  void on_finish(int slot, const std::string& trace,
                 const std::string& fingerprint, const std::string& outcome,
                 std::uint64_t queue_wait_us, std::uint64_t run_us,
                 std::uint64_t total_us, std::uint64_t start_us);
  void on_abandon(const std::string& trace, const std::string& fingerprint,
                  std::uint64_t now_us);
  void on_recover(const std::string& fingerprint);
  void on_drain(std::uint64_t now_us);

  // -- Exposure -------------------------------------------------------------

  /// Sample the tree (latency gauges included) and return the OpenMetrics
  /// text exposition — the body of the `metrics` op.
  [[nodiscard]] std::string openmetrics();

  /// Point-in-time digest for the extended `stats` event.
  struct Snapshot {
    telemetry::LatencySummary queue;  ///< ms
    telemetry::LatencySummary run;    ///< ms
    telemetry::LatencySummary total;  ///< ms
    std::uint64_t events_logged = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Flush the Chrome trace footer early (also done by the destructor).
  void close_trace();

 private:
  void log(const ServeEvent& event);
  void instant(std::string_view name, const std::string& trace,
               const std::string& fingerprint, std::uint64_t now_us);
  void feed_latency_gauges_locked();

  ObserveOptions options_;
  std::unique_ptr<EventLog> event_log_;
  std::unique_ptr<telemetry::ChromeTraceSink> trace_sink_;

  mutable std::mutex mutex_;
  telemetry::MonitorTree tree_;
  telemetry::SampleWindow queue_ms_;
  telemetry::SampleWindow run_ms_;
  telemetry::SampleWindow total_ms_;
  std::vector<bool> slot_busy_;
  // Cumulative inputs for the tree (the tree wants monotone raw values).
  std::uint64_t sessions_open_ = 0;
  std::uint64_t sessions_total_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t shed_high_ = 0;
  std::uint64_t shed_normal_ = 0;
  std::uint64_t shed_low_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_lookups_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t running_ = 0;
  std::vector<std::uint64_t> slot_completed_;
};

}  // namespace hpm::serve
