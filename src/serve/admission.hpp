// Admission control for hpmserve: a bounded queue with priority classes,
// per-client quotas, and explicit load shedding.
//
// The server never silently drops work.  When the queue is full (or a
// client is over quota, or the server is draining), try_push returns a
// rejection with a retry_after_ms hint sized to the current backlog — the
// client hears "come back later", not nothing.  Accepted jobs drain
// high-priority-first, FIFO within a class, so a saturated server still
// turns around interactive requests ahead of bulk sweeps.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace hpm::serve {

class Session;  // defined in server.hpp

/// One client waiting on a job's events (several when coalesced).
struct Waiter {
  std::weak_ptr<Session> session;
  std::string request_id;
  std::string trace;  ///< this waiter's trace id (coalesced waiters differ)
  std::uint64_t live_every = 0;  ///< hpm.live.v1 window period; 0 = off
};

/// One admitted unit of work: a sweep plus everyone waiting on it.
/// Identity is the request fingerprint — two submits of the same canonical
/// sweep coalesce onto one Job instead of running twice.
struct Job {
  std::string fingerprint;
  std::string canonical_sweep;
  SweepSpec sweep;
  Priority priority = Priority::kNormal;
  std::string client;  ///< quota identity of the submitting client
  /// Trace id of the submit that created the job (coalesced followers keep
  /// their own ids on their Waiter entries; lifecycle events use this one).
  std::string trace;
  /// WallSpan::now_us() at admission — the anchor for the queue-wait span.
  std::uint64_t accept_us = 0;
  /// steady-clock deadline; time_point::max() = none.  Enforced with
  /// per-run wall budgets plus a between-runs cancel check.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Replayed from the recovery journal at startup (no waiters yet; exempt
  /// from quotas — the work was already accepted before the crash).
  bool recovery = false;

  /// Cooperative cancel: set on deadline expiry or when every waiter
  /// disconnects.  BatchRunner skips queued-but-unstarted runs.
  std::atomic<bool> cancel{false};

  std::mutex waiters_mutex;
  std::vector<Waiter> waiters;

  /// True when every waiter is gone and nobody will hear the result.
  /// Abandoned non-recovery jobs are skipped by the executor.
  [[nodiscard]] bool abandoned();
};

/// Why try_push said no.  The names travel on the wire as the rejection
/// reason, so they are part of the hpm.serve.v1 vocabulary.
enum class ShedReason { kQueueFull, kOverQuota, kDraining };

[[nodiscard]] std::string_view shed_reason_name(ShedReason reason) noexcept;

class AdmissionQueue {
 public:
  struct Config {
    std::size_t max_depth = 16;        ///< queued jobs across all classes
    std::size_t per_client_quota = 0;  ///< queued+running per client; 0 = off
    std::uint64_t retry_after_base_ms = 200;
    std::uint64_t retry_after_per_item_ms = 50;
  };

  struct Verdict {
    bool accepted = false;
    ShedReason reason = ShedReason::kQueueFull;
    std::uint64_t retry_after_ms = 0;  ///< backlog-proportional hint
    std::size_t depth = 0;             ///< queue depth after the decision
  };

  explicit AdmissionQueue(Config config) : config_(config) {}

  /// Admit or shed.  Accepted jobs enter their priority class FIFO and
  /// count against the client's quota until job_finished(client).
  [[nodiscard]] Verdict try_push(const std::shared_ptr<Job>& job);

  /// Highest-priority queued job, FIFO within a class; nullptr when empty.
  /// Never blocks — the server enqueues one executor task per admission,
  /// so a task always finds at most its own job missing (already popped).
  [[nodiscard]] std::shared_ptr<Job> try_pop();

  /// Release the client's quota slot (call once per admitted job, after
  /// the job finished, was skipped, or was abandoned).
  void job_finished(const std::string& client);

  /// Stop admitting (try_push sheds with kDraining); queued jobs still pop.
  void begin_drain();

  [[nodiscard]] bool draining() const;
  [[nodiscard]] std::size_t depth() const;
  /// Total jobs shed since startup (all reasons).
  [[nodiscard]] std::uint64_t shed_count() const;
  /// Sheds split by the rejected job's priority class, indexed by
  /// Priority — the observability plane exposes these per class so a
  /// saturated server shows *who* it is turning away.
  [[nodiscard]] std::array<std::uint64_t, 3> shed_by_class() const;

 private:
  Config config_;
  mutable std::mutex mutex_;
  std::deque<std::shared_ptr<Job>> classes_[3];  ///< indexed by Priority
  std::map<std::string, std::size_t> client_load_;  ///< queued + running
  bool draining_ = false;
  std::uint64_t shed_ = 0;
  std::array<std::uint64_t, 3> shed_by_class_{};  ///< indexed by Priority
};

}  // namespace hpm::serve
