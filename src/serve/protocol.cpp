#include "serve/protocol.hpp"

#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>

#include "harness/experiment.hpp"
#include "harness/json_export.hpp"
#include "harness/provenance.hpp"
#include "sim/memory_hierarchy.hpp"
#include "workloads/workload.hpp"

namespace hpm::serve {
namespace {

using harness::JsonValue;
using harness::JsonWriter;

// -- JSON field helpers (strict: a present-but-mistyped field is an error,
// never a silent default) ----------------------------------------------------

[[noreturn]] void bad_field(std::string_view key, std::string_view expected) {
  throw std::invalid_argument("field '" + std::string(key) + "' must be " +
                              std::string(expected));
}

std::uint64_t u64_or(const JsonValue& obj, std::string_view key,
                     std::uint64_t fallback) {
  const JsonValue* value = obj.find(key);
  if (value == nullptr) return fallback;
  if (value->kind() != JsonValue::Kind::kNumber) bad_field(key, "a number");
  return value->uint();
}

std::int64_t i64_or(const JsonValue& obj, std::string_view key,
                    std::int64_t fallback) {
  const JsonValue* value = obj.find(key);
  if (value == nullptr) return fallback;
  if (value->kind() != JsonValue::Kind::kNumber) bad_field(key, "a number");
  return static_cast<std::int64_t>(value->number());
}

double dbl_or(const JsonValue& obj, std::string_view key, double fallback) {
  const JsonValue* value = obj.find(key);
  if (value == nullptr) return fallback;
  if (value->kind() != JsonValue::Kind::kNumber) bad_field(key, "a number");
  return value->number();
}

std::string str_or(const JsonValue& obj, std::string_view key,
                   std::string fallback) {
  const JsonValue* value = obj.find(key);
  if (value == nullptr) return fallback;
  if (value->kind() != JsonValue::Kind::kString) bad_field(key, "a string");
  return value->str();
}

std::vector<std::string> str_list_or(const JsonValue& obj,
                                     std::string_view key,
                                     std::vector<std::string> fallback) {
  const JsonValue* value = obj.find(key);
  if (value == nullptr) return fallback;
  if (value->kind() != JsonValue::Kind::kArray) {
    bad_field(key, "an array of strings");
  }
  std::vector<std::string> out;
  for (const JsonValue& element : value->array()) {
    if (element.kind() != JsonValue::Kind::kString) {
      bad_field(key, "an array of strings");
    }
    out.push_back(element.str());
  }
  if (out.empty()) bad_field(key, "a non-empty array");
  return out;
}

void reject_unknown_keys(const JsonValue& obj,
                         const std::set<std::string_view>& known,
                         std::string_view where) {
  for (const std::string& key : obj.object_keys()) {
    if (known.find(key) == known.end()) {
      throw std::invalid_argument("unknown " + std::string(where) +
                                  " field '" + key + "'");
    }
  }
}

SweepSpec sweep_from_json(const JsonValue& node) {
  if (node.kind() != JsonValue::Kind::kObject) {
    throw std::invalid_argument("'sweep' must be an object");
  }
  reject_unknown_keys(
      node,
      {"schema", "workloads", "tools", "scale", "iterations", "seed", "cache",
       "levels", "observe", "period", "policy", "n", "interval", "faults",
       "max_cycles", "retries"},
      "sweep");
  SweepSpec sweep;
  sweep.workloads = str_list_or(node, "workloads", sweep.workloads);
  sweep.tools = str_list_or(node, "tools", sweep.tools);
  // Canonicalize the nway alias up front so two spellings of the same
  // experiment share one fingerprint (and one cache entry).
  for (std::string& tool : sweep.tools) {
    if (tool == "nway") tool = "search";
  }
  sweep.scale = dbl_or(node, "scale", sweep.scale);
  sweep.iterations = u64_or(node, "iterations", sweep.iterations);
  sweep.seed = u64_or(node, "seed", sweep.seed);
  sweep.cache_bytes = u64_or(node, "cache", sweep.cache_bytes);
  sweep.levels = str_or(node, "levels", sweep.levels);
  sweep.observe = i64_or(node, "observe", sweep.observe);
  sweep.period = u64_or(node, "period", sweep.period);
  sweep.policy = str_or(node, "policy", sweep.policy);
  sweep.n = static_cast<std::uint32_t>(u64_or(node, "n", sweep.n));
  sweep.interval = u64_or(node, "interval", sweep.interval);
  if (const JsonValue* faults = node.find("faults")) {
    if (faults->kind() != JsonValue::Kind::kObject) {
      bad_field("faults", "an object");
    }
    reject_unknown_keys(*faults,
                        {"seed", "skid", "drop_rate", "jitter_rate",
                         "jitter_magnitude", "saturate", "reprogram_delay"},
                        "faults");
    sweep.faults.seed = u64_or(*faults, "seed", sweep.faults.seed);
    sweep.faults.skid_refs = static_cast<std::uint32_t>(
        u64_or(*faults, "skid", sweep.faults.skid_refs));
    sweep.faults.drop_rate =
        dbl_or(*faults, "drop_rate", sweep.faults.drop_rate);
    sweep.faults.jitter_rate =
        dbl_or(*faults, "jitter_rate", sweep.faults.jitter_rate);
    sweep.faults.jitter_magnitude = static_cast<std::uint32_t>(
        u64_or(*faults, "jitter_magnitude", sweep.faults.jitter_magnitude));
    sweep.faults.saturate_at =
        u64_or(*faults, "saturate", sweep.faults.saturate_at);
    sweep.faults.reprogram_delay_misses = static_cast<std::uint32_t>(
        u64_or(*faults, "reprogram_delay", sweep.faults.reprogram_delay_misses));
  }
  sweep.max_cycles = u64_or(node, "max_cycles", sweep.max_cycles);
  sweep.retries =
      static_cast<std::uint32_t>(u64_or(node, "retries", sweep.retries));
  return sweep;
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

std::string_view priority_name(Priority priority) noexcept {
  switch (priority) {
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kLow:
      return "low";
  }
  return "normal";
}

Priority parse_priority(std::string_view name) {
  if (name == "high") return Priority::kHigh;
  if (name == "normal") return Priority::kNormal;
  if (name == "low") return Priority::kLow;
  throw std::invalid_argument("unknown priority: " + std::string(name));
}

ServeRequest parse_request(const JsonValue& op) {
  reject_unknown_keys(op,
                      {"schema", "op", "id", "client", "trace", "priority",
                       "deadline_ms", "live_every", "sweep"},
                      "submit");
  ServeRequest request;
  request.id = str_or(op, "id", "");
  if (request.id.empty()) {
    throw std::invalid_argument("submit requires a non-empty 'id'");
  }
  request.client = str_or(op, "client", "");
  request.trace = str_or(op, "trace", "");
  request.priority = parse_priority(str_or(op, "priority", "normal"));
  request.deadline_ms = u64_or(op, "deadline_ms", 0);
  request.live_every = u64_or(op, "live_every", 0);
  if (const JsonValue* sweep = op.find("sweep")) {
    request.sweep = sweep_from_json(*sweep);
  }
  return request;
}

std::string canonical_sweep_json(const SweepSpec& sweep) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.key("schema").value("hpm.serve.sweep.v1");
  w.key("workloads").begin_array();
  for (const std::string& name : sweep.workloads) w.value(name);
  w.end_array();
  w.key("tools").begin_array();
  for (const std::string& name : sweep.tools) w.value(name);
  w.end_array();
  w.key("scale").value(sweep.scale);
  w.key("iterations").value(sweep.iterations);
  w.key("seed").value(sweep.seed);
  w.key("cache").value(sweep.cache_bytes);
  w.key("levels").value(sweep.levels);
  w.key("observe").value(sweep.observe);
  w.key("period").value(sweep.period);
  w.key("policy").value(sweep.policy);
  w.key("n").value(std::uint64_t{sweep.n});
  w.key("interval").value(sweep.interval);
  w.key("faults").begin_object();
  w.key("seed").value(sweep.faults.seed);
  w.key("skid").value(std::uint64_t{sweep.faults.skid_refs});
  w.key("drop_rate").value(sweep.faults.drop_rate);
  w.key("jitter_rate").value(sweep.faults.jitter_rate);
  w.key("jitter_magnitude").value(std::uint64_t{sweep.faults.jitter_magnitude});
  w.key("saturate").value(sweep.faults.saturate_at);
  w.key("reprogram_delay")
      .value(std::uint64_t{sweep.faults.reprogram_delay_misses});
  w.end_object();
  w.key("max_cycles").value(sweep.max_cycles);
  w.key("retries").value(std::uint64_t{sweep.retries});
  w.end_object();
  return std::move(out).str();
}

std::string request_fingerprint(const SweepSpec& sweep) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    fnv1a(canonical_sweep_json(sweep))));
  return buf;
}

SweepSpec parse_canonical_sweep(std::string_view json) {
  const JsonValue doc = JsonValue::parse(json);
  if (doc.kind() != JsonValue::Kind::kObject ||
      str_or(doc, "schema", "") != "hpm.serve.sweep.v1") {
    throw std::invalid_argument("not an hpm.serve.sweep.v1 document");
  }
  return sweep_from_json(doc);
}

std::vector<harness::RunSpec> build_specs(const SweepSpec& sweep) {
  for (const std::string& name : sweep.workloads) {
    if (!workloads::is_workload_name(name)) {
      throw std::invalid_argument("unknown workload '" + name + "'");
    }
  }

  harness::RunConfig base;
  base.machine = harness::paper_machine();
  if (sweep.cache_bytes != 0) {
    base.machine.cache.size_bytes = sweep.cache_bytes;
  }
  if (!base.machine.cache.valid()) {
    throw std::invalid_argument("cache size must be a power of two");
  }
  if (!sweep.levels.empty()) {
    try {
      if (!sim::hierarchy_preset(sweep.levels, base.machine.hierarchy)) {
        base.machine.hierarchy = sim::parse_hierarchy_spec(sweep.levels);
      }
    } catch (const std::exception& e) {
      throw std::invalid_argument(e.what());
    }
  }
  if (sweep.observe >= 0) {
    base.machine.hierarchy.observe_level =
        static_cast<std::size_t>(sweep.observe);
    const std::size_t num_levels =
        sim::resolve_levels(base.machine.hierarchy, base.machine.cache).size();
    if (base.machine.hierarchy.observe_level >= num_levels) {
      throw std::invalid_argument(
          "observe level " + std::to_string(sweep.observe) +
          " out of range: hierarchy has " + std::to_string(num_levels) +
          " level(s)");
    }
  }
  // Validate the resolved hierarchy up front (bad geometry = bad_request,
  // never a mid-sweep per-run failure).
  try {
    sim::MemoryHierarchy probe(
        sim::resolve_levels(base.machine.hierarchy, base.machine.cache),
        base.machine.hierarchy.observe_level);
  } catch (const std::exception& e) {
    throw std::invalid_argument(e.what());
  }
  base.machine.faults = sweep.faults;
  try {
    sim::validate(base.machine.faults);
  } catch (const std::exception& e) {
    throw std::invalid_argument(e.what());
  }
  base.machine.max_cycles = sweep.max_cycles;

  std::vector<std::pair<std::string, harness::RunConfig>> tools;
  for (const std::string& tool : sweep.tools) {
    harness::RunConfig config = base;
    if (tool == "sample") {
      config.tool = harness::ToolKind::kSampler;
      config.sampler.period = sweep.period;
      if (sweep.policy == "prime") {
        config.sampler.policy = core::PeriodPolicy::kPrime;
      } else if (sweep.policy == "random") {
        config.sampler.policy = core::PeriodPolicy::kPseudoRandom;
      } else if (sweep.policy != "fixed") {
        throw std::invalid_argument("unknown policy '" + sweep.policy + "'");
      }
    } else if (tool == "search") {
      config.tool = harness::ToolKind::kSearch;
      config.search.n = sweep.n;
      config.search.initial_interval = sweep.interval;
    } else if (tool != "none") {
      throw std::invalid_argument("unknown tool '" + tool + "'");
    }
    tools.emplace_back(tool, config);
  }

  workloads::WorkloadOptions options;
  options.scale = sweep.scale;
  options.iterations = sweep.iterations;
  options.seed = sweep.seed;
  return harness::cross_specs(sweep.workloads, tools,
                              [&](const std::string&) { return options; });
}

// -- Line builders ------------------------------------------------------------

namespace {

/// Start one compact event line: {"schema":"hpm.serve.v1","event":...
std::ostringstream event_head(std::string_view event) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kSchema << "\",\"event\":\"" << event << '"';
  return out;
}

void append_id(std::ostringstream& out, std::string_view id) {
  out << ",\"id\":\"" << harness::json_escape(id) << '"';
}

void append_trace(std::ostringstream& out, std::string_view trace) {
  if (trace.empty()) return;  // protocol-level errors have no trace yet
  out << ",\"trace\":\"" << harness::json_escape(trace) << '"';
}

}  // namespace

std::string hello_line(std::string_view server_version, unsigned executors,
                       bool draining, bool include_build_meta) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.key("schema").value(kSchema);
  w.key("event").value("hello");
  w.key("proto").value(1);
  w.key("server").value("hpmserve " + std::string(server_version));
  w.key("executors").value(executors);
  w.key("draining").value(draining);
  harness::write_meta(w, include_build_meta);
  w.end_object();
  return std::move(out).str();
}

std::string accepted_line(std::string_view id, std::string_view trace,
                          std::string_view fingerprint,
                          std::size_t queue_depth, bool coalesced) {
  auto out = event_head("accepted");
  append_id(out, id);
  append_trace(out, trace);
  out << ",\"fingerprint\":\"" << harness::json_escape(fingerprint)
      << "\",\"queue_depth\":" << queue_depth
      << ",\"coalesced\":" << (coalesced ? "true" : "false") << '}';
  return std::move(out).str();
}

std::string rejected_line(std::string_view id, std::string_view trace,
                          std::string_view reason,
                          std::uint64_t retry_after_ms,
                          std::string_view detail) {
  auto out = event_head("rejected");
  append_id(out, id);
  append_trace(out, trace);
  out << ",\"reason\":\"" << harness::json_escape(reason)
      << "\",\"retry_after_ms\":" << retry_after_ms;
  if (!detail.empty()) {
    out << ",\"detail\":\"" << harness::json_escape(detail) << '"';
  }
  out << '}';
  return std::move(out).str();
}

std::string started_line(std::string_view id, std::string_view trace) {
  auto out = event_head("started");
  append_id(out, id);
  append_trace(out, trace);
  out << '}';
  return std::move(out).str();
}

std::string progress_line(std::string_view id, std::string_view trace,
                          std::size_t done, std::size_t total,
                          std::string_view run_name,
                          std::string_view outcome) {
  auto out = event_head("progress");
  append_id(out, id);
  append_trace(out, trace);
  out << ",\"done\":" << done << ",\"total\":" << total << ",\"run\":\""
      << harness::json_escape(run_name) << "\",\"outcome\":\""
      << harness::json_escape(outcome) << "\"}";
  return std::move(out).str();
}

std::string live_line(std::string_view id, std::string_view trace,
                      std::string_view raw_line) {
  auto out = event_head("live");
  append_id(out, id);
  append_trace(out, trace);
  // Splice the hpm.live.v1 line verbatim — it is already one compact JSON
  // object, so no re-parse is needed on the hot streaming path.
  out << ",\"data\":" << raw_line << '}';
  return std::move(out).str();
}

std::string result_line(std::string_view id, std::string_view trace,
                        std::string_view fingerprint, bool cached, bool ok,
                        std::size_t failed, std::uint64_t queue_us,
                        std::uint64_t run_us, std::uint64_t total_us,
                        std::string_view result_json) {
  auto out = event_head("result");
  append_id(out, id);
  append_trace(out, trace);
  out << ",\"fingerprint\":\"" << harness::json_escape(fingerprint)
      << "\",\"cached\":" << (cached ? "true" : "false")
      << ",\"ok\":" << (ok ? "true" : "false") << ",\"failed\":" << failed
      // "stages" stays ahead of "result": the result payload is the last
      // member, so clients may slice it off the line tail.
      << ",\"stages\":{\"queue_us\":" << queue_us << ",\"run_us\":" << run_us
      << ",\"total_us\":" << total_us << '}'
      << ",\"result\":" << result_json << '}';
  return std::move(out).str();
}

std::string error_line(std::string_view id, std::string_view trace,
                       std::string_view detail) {
  auto out = event_head("error");
  append_id(out, id);
  append_trace(out, trace);
  out << ",\"detail\":\"" << harness::json_escape(detail) << "\"}";
  return std::move(out).str();
}

std::string metrics_line(std::string_view exposition) {
  auto out = event_head("metrics");
  out << ",\"data\":\"" << harness::json_escape(exposition) << "\"}";
  return std::move(out).str();
}

std::string pong_line() {
  auto out = event_head("pong");
  out << '}';
  return std::move(out).str();
}

}  // namespace hpm::serve
