// Result cache keyed by canonical request fingerprint.
//
// A served experiment is a pure function of its canonical sweep (the
// simulator is bit-for-bit deterministic), so a fully successful result
// can be replayed from memory for every later identical request.  Only
// clean results are cached — a sweep truncated by a deadline or carrying
// failed runs must re-run, never poison future answers.  Bounded LRU.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace hpm::serve {

class ResultCache {
 public:
  explicit ResultCache(std::size_t max_entries) : max_entries_(max_entries) {}

  /// Compact batch-result JSON for the fingerprint; nullopt on miss.
  [[nodiscard]] std::optional<std::string> get(const std::string& fingerprint);

  /// Store a fully-ok result (callers must not pass partial results).
  /// Evicts least-recently-used entries beyond the bound.
  void put(const std::string& fingerprint, std::string result_json);

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

 private:
  struct Entry {
    std::string fingerprint;
    std::string result_json;
  };

  std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recent
  std::map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hpm::serve
