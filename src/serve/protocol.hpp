// hpm.serve.v1: the line-delimited JSON protocol between hpmserve and its
// clients, plus the canonical request form that keys the result cache and
// the crash-recovery journal.
//
// One JSON object per '\n'-terminated line in both directions.
//
// Client -> server ops:
//   {"op":"submit","id":"r1","priority":"normal","deadline_ms":0,
//    "live_every":0,"client":"tenant-a","sweep":{...}}
//   {"op":"stats"}   {"op":"ping"}   {"op":"drain"}  (drain is opt-in)
//
// Server -> client events (every line carries "schema":"hpm.serve.v1"):
//   hello, accepted, rejected (explicit RETRY_AFTER shed), started,
//   progress, live (enveloped hpm.live.v1 line), result, error, stats,
//   pong, draining.
//
// A submit always terminates in exactly one of {rejected, result, error} —
// the loadgen and the saturation bench count on that to prove "sheds are
// reported, not dropped".
//
// The canonical request form materializes every sweep default in a fixed
// key order, so two requests that mean the same experiment serialize to
// the same bytes; its FNV-1a hash is the request fingerprint — the result
// cache key, the checkpoint file name, and the recovery-journal identity.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "harness/batch.hpp"

namespace hpm::harness {
class JsonValue;  // json_export.hpp
}

namespace hpm::serve {

inline constexpr std::string_view kSchema = "hpm.serve.v1";

/// Admission priority classes, drained high-first (FIFO within a class).
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };

[[nodiscard]] std::string_view priority_name(Priority priority) noexcept;
/// Inverse of priority_name; throws std::invalid_argument.
[[nodiscard]] Priority parse_priority(std::string_view name);

/// The experiment payload: a (workloads x tools) sweep with the same
/// vocabulary as hpmrun's flags, so a serve request and a CLI invocation
/// describe — and produce — byte-identical batches.
struct SweepSpec {
  std::vector<std::string> workloads = {"synthetic"};
  std::vector<std::string> tools = {"search"};  ///< none|sample|search
  double scale = 1.0;
  std::uint64_t iterations = 0;
  std::uint64_t seed = 0x5ca1ab1e;
  std::uint64_t cache_bytes = 0;  ///< 0 = paper default (2 MiB)
  std::string levels;             ///< hierarchy preset/spec; empty = single
  std::int64_t observe = -1;      ///< PMU level; -1 = hierarchy default
  // Tool parameters.
  std::uint64_t period = 10'000;  ///< sampler: misses per sample
  std::string policy = "fixed";   ///< sampler: fixed|prime|random
  std::uint32_t n = 10;           ///< search: counters/regions
  std::uint64_t interval = 1'000'000;  ///< search: initial interval, cycles
  // Fault plan (defaults = no faults).
  sim::FaultPlan faults{};
  // Per-run budgets and retry policy.
  std::uint64_t max_cycles = 0;
  std::uint32_t retries = 0;  ///< extra attempts for transient failures
};

struct ServeRequest {
  std::string id;          ///< client correlation id, echoed on every event
  std::string client;      ///< quota identity; empty = per-connection
  /// End-to-end trace id.  Client-supplied ("trace" submit field) or
  /// server-assigned ("s<N>") when empty; echoed on every event for the
  /// request and stamped on every hpm.serve.events.v1 record, so one id
  /// follows the request through admission -> queue -> executor -> reply.
  std::string trace;
  Priority priority = Priority::kNormal;
  std::uint64_t deadline_ms = 0;  ///< 0 = no deadline
  std::uint64_t live_every = 0;   ///< hpm.live.v1 window period; 0 = off
  SweepSpec sweep;
};

/// Parse the "sweep" object of a submit op.  Unknown keys are errors (a
/// typo'd knob must not silently run the default experiment); malformed
/// values throw std::invalid_argument with the offending key.
[[nodiscard]] ServeRequest parse_request(const harness::JsonValue& op);

/// Canonical serialization of the sweep: fixed key order, every default
/// materialized, compact.  Identity for caching/journaling — request
/// metadata (id, priority, deadline) is deliberately excluded, since it
/// never changes the experiment's bytes.
[[nodiscard]] std::string canonical_sweep_json(const SweepSpec& sweep);

/// 16-hex-digit FNV-1a fingerprint of canonical_sweep_json().
[[nodiscard]] std::string request_fingerprint(const SweepSpec& sweep);

/// Reconstruct a SweepSpec from its canonical JSON (recovery journal).
[[nodiscard]] SweepSpec parse_canonical_sweep(std::string_view json);

/// Expand the sweep into BatchRunner specs — the exact specs `hpmrun
/// --workload a,b --tool t ...` would build, including run names
/// "<workload>/<tool>", so served results are byte-identical to CLI runs.
/// Throws std::invalid_argument on unknown workloads/tools or an invalid
/// hierarchy/fault plan (the server maps this to a bad_request rejection).
[[nodiscard]] std::vector<harness::RunSpec> build_specs(const SweepSpec& sweep);

// -- Server -> client line builders ------------------------------------------

// Every per-request event echoes the request's trace id (omitted only on
// protocol-level errors that never reached admission).

[[nodiscard]] std::string hello_line(std::string_view server_version,
                                     unsigned executors, bool draining,
                                     bool include_build_meta);
[[nodiscard]] std::string accepted_line(std::string_view id,
                                        std::string_view trace,
                                        std::string_view fingerprint,
                                        std::size_t queue_depth,
                                        bool coalesced);
[[nodiscard]] std::string rejected_line(std::string_view id,
                                        std::string_view trace,
                                        std::string_view reason,
                                        std::uint64_t retry_after_ms,
                                        std::string_view detail);
[[nodiscard]] std::string started_line(std::string_view id,
                                       std::string_view trace);
[[nodiscard]] std::string progress_line(std::string_view id,
                                        std::string_view trace,
                                        std::size_t done, std::size_t total,
                                        std::string_view run_name,
                                        std::string_view outcome);
/// Envelope one raw hpm.live.v1 JSONL line (spliced verbatim as `data`).
[[nodiscard]] std::string live_line(std::string_view id,
                                    std::string_view trace,
                                    std::string_view raw_line);
/// `stages` carries the per-stage wall breakdown (queue wait, executor
/// run, submit-to-result total, microseconds); all zero for cache hits.
/// It precedes "result" so tools that slice the result payload off the
/// line tail keep working.
[[nodiscard]] std::string result_line(std::string_view id,
                                      std::string_view trace,
                                      std::string_view fingerprint,
                                      bool cached, bool ok,
                                      std::size_t failed,
                                      std::uint64_t queue_us,
                                      std::uint64_t run_us,
                                      std::uint64_t total_us,
                                      std::string_view result_json);
[[nodiscard]] std::string error_line(std::string_view id,
                                     std::string_view trace,
                                     std::string_view detail);
[[nodiscard]] std::string pong_line();
/// The `metrics` op's reply: the OpenMetrics exposition as one JSON
/// string field (escaped — clients unescape `data` to recover the text).
[[nodiscard]] std::string metrics_line(std::string_view exposition);

}  // namespace hpm::serve
