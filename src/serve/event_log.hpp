// hpmserve structured event log (hpm.serve.events.v1).
//
// An append-only JSONL record of every request's lifecycle through the
// server — the durable half of the observability plane (the MonitorTree
// in observe.hpp is the in-memory half; both are fed from the same
// transitions so they can never disagree):
//
//   {"schema":"hpm.serve.events.v1","seq":1,"event":"accept",
//    "trace":"t1","fingerprint":"<16 hex>","priority":"normal",
//    "client":"tenant-a","queue_depth":1,"t_us":123456}
//   {"schema":"hpm.serve.events.v1","seq":2,"event":"start","trace":"t1",
//    "fingerprint":"...","executor":0,"queue_wait_us":87,"t_us":123543}
//   {"schema":"hpm.serve.events.v1","seq":3,"event":"finish","trace":"t1",
//    "fingerprint":"...","outcome":"ok","executor":0,"queue_wait_us":87,
//    "run_us":51234,"total_us":51321,"t_us":174777}
//
// Vocabulary: accept, shed, coalesce, cache_hit, start, finish, abandon,
// recover, drain.  Every per-request record carries the request's trace id,
// so one `grep trace-id` reconstructs the request's whole path through
// admission -> queue -> executor -> response.
//
// Like the recovery journal the log is torn-line tolerant: the writer may
// die mid-append (kill -9), so replay() skips unparsable lines instead of
// failing — tests truncate a log at every byte and replay each prefix.
// Unlike the journal it is NOT fsynced per line: losing the tail of an
// observability log on power failure is acceptable, blocking admission on
// a disk flush is not (a plain write() still survives a process kill).
//
// Determinism mode: with include_timing=false every wall-clock field
// (t_us, queue_wait_us, run_us, total_us) and the executor id (a scheduling
// artifact) are omitted, so the log of a given request sequence is
// byte-identical at any --executors count — the same contract hpmrun's
// --no-timing gives exports.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hpm::harness {
class JsonValue;  // json_export.hpp
}

namespace hpm::serve {

inline constexpr std::string_view kEventSchema = "hpm.serve.events.v1";

/// One lifecycle record (the writer-side view; replay() returns parsed
/// JsonValues so readers keep working when fields are added).
struct ServeEvent {
  std::string event;        ///< accept|shed|coalesce|cache_hit|start|...
  std::string trace;        ///< empty for server-wide events (drain)
  std::string fingerprint;  ///< empty for server-wide events
  std::string priority;     ///< accept/shed only
  std::string client;       ///< accept/shed only
  std::string reason;       ///< shed only (queue_full|over_quota|...)
  std::string outcome;      ///< finish only (ok|failed|cancelled)
  std::int64_t queue_depth = -1;  ///< accept only; -1 = omit
  std::int64_t executor = -1;     ///< start/finish; -1 = omit
  // Wall-clock fields; negative = omit.  All gated by include_timing.
  std::int64_t t_us = -1;
  std::int64_t queue_wait_us = -1;
  std::int64_t run_us = -1;
  std::int64_t total_us = -1;
};

class EventLog {
 public:
  /// Opens (appending) the log at `path`; empty path disables append().
  /// Throws std::runtime_error when the path exists but is not writable —
  /// an observability plane that silently drops its log is worse than a
  /// loud startup failure.
  EventLog(std::string path, bool include_timing);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return fd_ >= 0; }

  /// Serialize and append one record (line-atomic; seq assigned here under
  /// the same lock so sequence numbers match file order).
  void append(const ServeEvent& event);

  /// Records appended so far.
  [[nodiscard]] std::uint64_t count() const;

  /// Serialize one record WITHOUT appending (what append would write,
  /// minus the seq assignment) — the unit tests pin the line format with
  /// this and the CI smoke replays real logs.
  [[nodiscard]] static std::string format(const ServeEvent& event,
                                          std::uint64_t seq,
                                          bool include_timing);

  /// Parse a log back into its valid records.  Malformed lines — torn
  /// final writes, seeks into the middle of a line, garbage — are skipped
  /// and counted in `*skipped` (optional).  Missing file = empty log.
  [[nodiscard]] static std::vector<harness::JsonValue> replay(
      const std::string& path, std::uint64_t* skipped = nullptr);

 private:
  std::string path_;
  bool include_timing_;
  int fd_ = -1;
  mutable std::mutex mutex_;
  std::uint64_t seq_ = 0;
};

}  // namespace hpm::serve
