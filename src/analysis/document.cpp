#include "analysis/document.hpp"

#include <fstream>
#include <sstream>

namespace hpm::analysis {
namespace {

/// Re-throw any parse/validation failure with the file name prepended, so
/// a user looking at a pipeline of several JSON artifacts knows which one
/// is broken (the parser's own message carries the byte offset).
template <typename Fn>
auto with_context(const std::string& path, Fn&& parse)
    -> decltype(parse()) {
  try {
    return parse();
  } catch (const DocumentError&) {
    throw;  // already located
  } catch (const std::exception& e) {
    throw DocumentError(path + ": " + e.what());
  }
}

}  // namespace

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DocumentError(path + ": cannot open for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw DocumentError(path + ": read error");
  return std::move(buffer).str();
}

harness::BatchResult load_batch_file(const std::string& path) {
  const std::string text = read_file(path);
  return with_context(path,
                      [&] { return harness::parse_batch_result(text); });
}

harness::MetricsDocument load_metrics_file(const std::string& path) {
  const std::string text = read_file(path);
  return with_context(path,
                      [&] { return harness::parse_metrics_document(text); });
}

}  // namespace hpm::analysis
