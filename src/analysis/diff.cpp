#include "analysis/diff.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "harness/json_export.hpp"

namespace hpm::analysis {
namespace {

/// Identity of a run for alignment: position-independent, includes the
/// seed so re-seeded sweeps do not silently compare unlike runs.
std::string run_key(const harness::BatchItem& item) {
  return item.spec.name + "|" +
         std::string(harness::tool_kind_name(item.spec.config.tool)) + "|" +
         std::to_string(item.spec.options.seed);
}

class Comparer {
 public:
  Comparer(DiffResult& diff, const DiffOptions& options,
           const std::string& run)
      : diff_(diff), options_(options), run_(run) {}

  /// Counters and other magnitudes: relative tolerance.
  void count(const std::string& metric, double old_value, double new_value) {
    ++diff_.metrics_compared;
    if (old_value == new_value) return;
    const bool regression =
        std::abs(new_value - old_value) >
        options_.count_rel_tol * std::abs(old_value);
    push(metric, old_value, new_value, regression);
  }

  /// Miss-share percentages: absolute tolerance in points.
  void percent(const std::string& metric, double old_value,
               double new_value) {
    ++diff_.metrics_compared;
    if (old_value == new_value) return;
    const bool regression =
        std::abs(new_value - old_value) > options_.percent_abs_tol;
    push(metric, old_value, new_value, regression);
  }

  /// Flags and identities: any change is a regression.
  void exact(const std::string& metric, double old_value, double new_value) {
    ++diff_.metrics_compared;
    if (old_value == new_value) return;
    push(metric, old_value, new_value, /*regression=*/true);
  }

 private:
  void push(const std::string& metric, double old_value, double new_value,
            bool regression) {
    diff_.changed.push_back({run_, metric, old_value, new_value, regression});
    if (regression) ++diff_.regressions;
  }

  DiffResult& diff_;
  const DiffOptions& options_;
  const std::string& run_;
};

void diff_reports(Comparer& compare, const std::string& prefix,
                  const core::Report& older, const core::Report& newer) {
  compare.count(prefix + ".total_count",
                static_cast<double>(older.total_count()),
                static_cast<double>(newer.total_count()));
  // Union of object names, in a stable order: a vanished or newly
  // appearing object is a share going to/from zero.
  std::set<std::string> names;
  for (const auto& row : older.rows()) names.insert(row.name);
  for (const auto& row : newer.rows()) names.insert(row.name);
  for (const auto& name : names) {
    compare.percent(prefix + "." + name,
                    older.percent_of(name).value_or(0.0),
                    newer.percent_of(name).value_or(0.0));
  }
}

void diff_items(DiffResult& diff, const DiffOptions& options,
                const std::string& run, const harness::BatchItem& older,
                const harness::BatchItem& newer) {
  Comparer compare(diff, options, run);
  compare.exact("ok", older.ok ? 1.0 : 0.0, newer.ok ? 1.0 : 0.0);
  if (!older.ok || !newer.ok) return;

  const auto& os = older.result.stats;
  const auto& ns = newer.result.stats;
  compare.count("stats.app_instructions",
                static_cast<double>(os.app_instructions),
                static_cast<double>(ns.app_instructions));
  compare.count("stats.app_refs", static_cast<double>(os.app_refs),
                static_cast<double>(ns.app_refs));
  compare.count("stats.app_misses", static_cast<double>(os.app_misses),
                static_cast<double>(ns.app_misses));
  // Metric name matches the historical JSON export key for this counter.
  compare.count("stats.l1_hits", static_cast<double>(os.filtered_hits),
                static_cast<double>(ns.filtered_hits));
  compare.count("stats.tool_refs", static_cast<double>(os.tool_refs),
                static_cast<double>(ns.tool_refs));
  compare.count("stats.tool_misses", static_cast<double>(os.tool_misses),
                static_cast<double>(ns.tool_misses));
  compare.count("stats.app_cycles", static_cast<double>(os.app_cycles),
                static_cast<double>(ns.app_cycles));
  compare.count("stats.tool_cycles", static_cast<double>(os.tool_cycles),
                static_cast<double>(ns.tool_cycles));
  compare.count("stats.interrupts", static_cast<double>(os.interrupts),
                static_cast<double>(ns.interrupts));
  compare.count("samples", static_cast<double>(older.result.samples),
                static_cast<double>(newer.result.samples));
  compare.count("unattributed_misses",
                static_cast<double>(older.result.unattributed_misses),
                static_cast<double>(newer.result.unattributed_misses));
  compare.exact("search_done", older.result.search_done ? 1.0 : 0.0,
                newer.result.search_done ? 1.0 : 0.0);
  compare.count("search_stats.iterations",
                older.result.search_stats.iterations,
                newer.result.search_stats.iterations);
  compare.count("search_stats.splits", older.result.search_stats.splits,
                newer.result.search_stats.splits);
  compare.count("search_stats.continuations",
                older.result.search_stats.continuations,
                newer.result.search_stats.continuations);
  diff_reports(compare, "actual", older.result.actual, newer.result.actual);
  diff_reports(compare, "estimated", older.result.estimated,
               newer.result.estimated);

  // Per-level hierarchy counters (v3 documents).  Levels are aligned by
  // name so an inserted/removed level reads as that level's counters going
  // to/from zero instead of shifting every downstream comparison.
  if (!older.result.levels.empty() || !newer.result.levels.empty()) {
    compare.exact("hierarchy.observe_level",
                  static_cast<double>(older.result.observe_level),
                  static_cast<double>(newer.result.observe_level));
    std::map<std::string, const sim::LevelSnapshot*> old_levels;
    std::map<std::string, const sim::LevelSnapshot*> new_levels;
    for (const auto& level : older.result.levels) {
      old_levels[level.name] = &level;
    }
    for (const auto& level : newer.result.levels) {
      new_levels[level.name] = &level;
    }
    std::set<std::string> level_names;
    for (const auto& [name, level] : old_levels) level_names.insert(name);
    for (const auto& [name, level] : new_levels) level_names.insert(name);
    static const sim::LevelSnapshot kEmptyLevel{};
    for (const auto& name : level_names) {
      const auto old_it = old_levels.find(name);
      const auto new_it = new_levels.find(name);
      const sim::LevelSnapshot& ol =
          old_it != old_levels.end() ? *old_it->second : kEmptyLevel;
      const sim::LevelSnapshot& nl =
          new_it != new_levels.end() ? *new_it->second : kEmptyLevel;
      const std::string prefix = "hierarchy." + name;
      compare.count(prefix + ".accesses", static_cast<double>(ol.accesses),
                    static_cast<double>(nl.accesses));
      compare.count(prefix + ".hits", static_cast<double>(ol.hits),
                    static_cast<double>(nl.hits));
      compare.count(prefix + ".misses", static_cast<double>(ol.misses),
                    static_cast<double>(nl.misses));
      compare.count(prefix + ".writebacks",
                    static_cast<double>(ol.writebacks),
                    static_cast<double>(nl.writebacks));
      compare.percent(prefix + ".miss_rate_pct", 100.0 * ol.miss_rate(),
                      100.0 * nl.miss_rate());
    }
  }
}

}  // namespace

DiffResult diff_batches(const harness::BatchResult& older,
                        const harness::BatchResult& newer,
                        const DiffOptions& options) {
  DiffResult diff;
  std::map<std::string, const harness::BatchItem*> old_by_key;
  for (const auto& item : older.items) old_by_key[run_key(item)] = &item;

  std::set<std::string> matched;
  for (const auto& item : newer.items) {
    const std::string key = run_key(item);
    const auto it = old_by_key.find(key);
    if (it == old_by_key.end()) {
      diff.only_new.push_back(item.spec.name);
      continue;
    }
    matched.insert(key);
    ++diff.runs_compared;
    diff_items(diff, options, item.spec.name, *it->second, item);
  }
  for (const auto& item : older.items) {
    if (matched.count(run_key(item)) == 0) {
      diff.only_old.push_back(item.spec.name);
    }
  }
  diff.regressions += diff.only_old.size() + diff.only_new.size();
  return diff;
}

util::Table diff_table(const DiffResult& diff) {
  util::Table table({"run", "metric", "old", "new", "delta", "status"},
                    {util::Align::kLeft, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kLeft});
  for (const auto& delta : diff.changed) {
    table.row().cell(delta.run).cell(delta.metric);
    table.cell(delta.old_value, 4).cell(delta.new_value, 4);
    const double rel = delta.old_value != 0.0
                           ? 100.0 * (delta.new_value - delta.old_value) /
                                 std::abs(delta.old_value)
                           : 0.0;
    if (delta.old_value != 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%+.2f%%", rel);
      table.cell(std::string(buf));
    } else {
      table.cell(std::string("new"));
    }
    table.cell(delta.regression ? "REGRESSION" : "ok (tolerated)");
  }
  for (const auto& name : diff.only_old) {
    table.row().cell(name).cell("(run)").blank().blank().blank();
    table.cell("REMOVED");
  }
  for (const auto& name : diff.only_new) {
    table.row().cell(name).cell("(run)").blank().blank().blank();
    table.cell("ADDED");
  }
  return table;
}

}  // namespace hpm::analysis
