#include "analysis/scoreboard.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <unordered_set>

#include "harness/json_export.hpp"
#include "harness/provenance.hpp"
#include "util/stats.hpp"

namespace hpm::analysis {
namespace {

/// Fractional ranks (1-based, average ties).  Larger value = rank 1, to
/// match how the reports rank objects (descending miss share).
std::vector<double> fractional_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return values[a] > values[b];
                   });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) share the average of ranks i+1..j+1.
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) /
                            2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman_rank_correlation(std::span<const double> a,
                                 std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 1.0;
  const auto ra = fractional_ranks(a.subspan(0, n));
  const auto rb = fractional_ranks(b.subspan(0, n));
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += ra[i];
    mean_b += rb[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = ra[i] - mean_a;
    const double db = rb[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 && var_b == 0.0) return 1.0;  // both constant: all tied
  if (var_a == 0.0 || var_b == 0.0) return 0.0;  // one side uninformative
  return cov / std::sqrt(var_a * var_b);
}

Scoreboard score_batch(const harness::BatchResult& batch,
                       const ScoreboardOptions& options) {
  Scoreboard scoreboard;
  scoreboard.options = options;

  // Exact-profile baseline for a run: its own "actual" report, or — when
  // the run was executed with exact profiling off — the profile of a
  // tool="none" run of the same workload and seed.
  const auto baseline_for =
      [&](const harness::BatchItem& item) -> const core::Report* {
    if (!item.result.actual.empty()) return &item.result.actual;
    for (const auto& other : batch.items) {
      if (!other.ok) continue;
      if (other.spec.config.tool != harness::ToolKind::kNone) continue;
      if (other.spec.workload != item.spec.workload) continue;
      if (other.spec.options.seed != item.spec.options.seed) continue;
      if (!other.result.actual.empty()) return &other.result.actual;
    }
    return nullptr;
  };

  for (const auto& item : batch.items) {
    if (!item.ok) continue;
    if (item.spec.config.tool == harness::ToolKind::kNone) continue;
    const core::Report* baseline = baseline_for(item);
    if (baseline == nullptr) continue;

    ScoreRow row;
    row.name = item.spec.name;
    row.workload = item.spec.workload;
    row.tool = harness::tool_kind_name(item.spec.config.tool);
    row.samples = item.result.samples;
    const auto& stats = item.result.stats;
    if (stats.total_cycles() > 0) {
      row.overhead_percent = 100.0 *
                             static_cast<double>(stats.tool_cycles) /
                             static_cast<double>(stats.total_cycles());
    }

    const core::Report actual =
        baseline->filtered(options.min_percent).top(options.top_k);
    const core::Report& estimated = item.result.estimated;
    std::vector<double> act;
    std::vector<double> est;
    for (const auto& object : actual.rows()) {
      ++row.objects;
      act.push_back(object.percent);
      const auto e = estimated.percent_of(object.name);
      est.push_back(e.value_or(0.0));
      if (!e) ++row.missing;
      const double err = std::abs(object.percent - e.value_or(0.0));
      row.max_abs_error = std::max(row.max_abs_error, err);
      row.mean_abs_error += err;
    }
    if (row.objects > 0) {
      row.mean_abs_error /= static_cast<double>(row.objects);
    }

    std::unordered_set<std::string> estimated_top;
    for (const auto& object : estimated.top(options.top_k).rows()) {
      estimated_top.insert(object.name);
    }
    if (row.objects > 0) {
      std::size_t hits = 0;
      for (const auto& object : actual.rows()) {
        if (estimated_top.count(object.name) != 0) ++hits;
      }
      row.topk_overlap = static_cast<double>(hits) /
                         static_cast<double>(row.objects);
    }

    row.spearman = spearman_rank_correlation(act, est);
    row.order_agreement = util::pairwise_order_agreement(act, est);
    for (const auto& level : item.result.levels) {
      row.level_miss_rates.emplace_back(level.name, 100.0 * level.miss_rate());
    }
    row.observe_level = item.result.observe_level;
    if (!item.result.core_stats.empty()) {
      row.cores = static_cast<unsigned>(item.result.core_stats.size());
      row.coherence_events = item.result.coherence_events;
      row.coherence_samples = item.result.coherence_samples;
      const core::Report coh_actual = item.result.coherence_actual
                                          .filtered(options.min_percent)
                                          .top(options.top_k);
      const core::Report& coh_estimated = item.result.coherence_estimated;
      std::size_t scored = 0;
      for (const auto& object : coh_actual.rows()) {
        ++scored;
        row.coherence_mae +=
            std::abs(object.percent -
                     coh_estimated.percent_of(object.name).value_or(0.0));
      }
      if (scored > 0) row.coherence_mae /= static_cast<double>(scored);
      if (!coh_actual.rows().empty()) {
        row.coherence_top = coh_actual.rows().front().name;
        row.coherence_top_percent = coh_actual.rows().front().percent;
      }
    }
    scoreboard.rows.push_back(std::move(row));
  }
  return scoreboard;
}

util::Table scoreboard_table(const Scoreboard& scoreboard) {
  // The per-level miss-rate column appears only when some run carries
  // hierarchy data, so single-level scoreboards render exactly as before.
  const bool any_levels = std::any_of(
      scoreboard.rows.begin(), scoreboard.rows.end(),
      [](const ScoreRow& row) { return !row.level_miss_rates.empty(); });
  // Likewise the coherence columns appear only when some run was
  // multi-core, so single-core scoreboards render exactly as before.
  const bool any_cores = std::any_of(
      scoreboard.rows.begin(), scoreboard.rows.end(),
      [](const ScoreRow& row) { return row.cores > 0; });
  std::vector<std::string> headers = {
      "run", "tool", "objects", "missing", "mean |err| %", "max |err| %",
      "top-k overlap", "spearman", "order agree", "overhead %", "samples"};
  std::vector<util::Align> aligns = {
      util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
      util::Align::kRight, util::Align::kRight, util::Align::kRight,
      util::Align::kRight, util::Align::kRight, util::Align::kRight,
      util::Align::kRight, util::Align::kRight};
  if (any_levels) {
    headers.push_back("level miss %");
    aligns.push_back(util::Align::kLeft);
  }
  if (any_cores) {
    headers.push_back("cores");
    aligns.push_back(util::Align::kRight);
    headers.push_back("coh |err| %");
    aligns.push_back(util::Align::kRight);
    headers.push_back("coh top");
    aligns.push_back(util::Align::kLeft);
  }
  util::Table table(headers, aligns);
  for (const auto& row : scoreboard.rows) {
    table.row().cell(row.name).cell(row.tool);
    table.cell(static_cast<std::uint64_t>(row.objects));
    table.cell(static_cast<std::uint64_t>(row.missing));
    table.cell(row.mean_abs_error, 2).cell(row.max_abs_error, 2);
    table.cell(row.topk_overlap, 3).cell(row.spearman, 3);
    table.cell(row.order_agreement, 3).cell(row.overhead_percent, 4);
    if (row.samples > 0) {
      table.cell(row.samples);
    } else {
      table.blank();
    }
    if (any_levels) {
      std::string cell;
      for (std::size_t i = 0; i < row.level_miss_rates.size(); ++i) {
        const auto& [name, rate] = row.level_miss_rates[i];
        if (!cell.empty()) cell += ' ';
        if (i == row.observe_level) cell += '*';
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s=%.2f", name.c_str(), rate);
        cell += buf;
      }
      table.cell(cell);
    }
    if (any_cores) {
      if (row.cores > 0) {
        table.cell(static_cast<std::uint64_t>(row.cores));
        table.cell(row.coherence_mae, 2);
        std::string top = row.coherence_top;
        if (!top.empty()) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "=%.1f", row.coherence_top_percent);
          top += buf;
        }
        table.cell(top);
      } else {
        table.blank().blank().blank();
      }
    }
  }
  return table;
}

void export_json(std::ostream& out, const Scoreboard& scoreboard,
                 int indent) {
  harness::JsonWriter w(out, indent);
  w.begin_object();
  w.key("schema").value("hpm.analysis.v1");
  // Stable provenance half only: this document is pinned byte-for-byte
  // across platforms, so the volatile build block must never appear.
  harness::write_meta(w, /*include_build=*/false);
  w.key("top_k").value(static_cast<std::uint64_t>(scoreboard.options.top_k));
  w.key("min_percent").value(scoreboard.options.min_percent);
  w.key("rows").begin_array();
  for (const auto& row : scoreboard.rows) {
    w.begin_object();
    w.key("name").value(row.name);
    w.key("workload").value(row.workload);
    w.key("tool").value(row.tool);
    w.key("objects").value(static_cast<std::uint64_t>(row.objects));
    w.key("missing").value(static_cast<std::uint64_t>(row.missing));
    w.key("mean_abs_error").value(row.mean_abs_error);
    w.key("max_abs_error").value(row.max_abs_error);
    w.key("topk_overlap").value(row.topk_overlap);
    w.key("spearman").value(row.spearman);
    w.key("order_agreement").value(row.order_agreement);
    w.key("overhead_percent").value(row.overhead_percent);
    w.key("samples").value(row.samples);
    // Hierarchy block only for multi-level runs: single-level scoreboard
    // documents stay byte-identical to the pre-hierarchy golden.
    if (!row.level_miss_rates.empty()) {
      w.key("observe_level").value(row.observe_level);
      w.key("level_miss_rates").begin_array();
      for (const auto& [name, rate] : row.level_miss_rates) {
        w.begin_object();
        w.key("name").value(name);
        w.key("miss_rate_pct").value(rate);
        w.end_object();
      }
      w.end_array();
    }
    // Coherence block only for multi-core runs: single-core scoreboard
    // documents stay byte-identical to pre-multicore goldens.
    if (row.cores > 0) {
      w.key("cores").value(static_cast<std::uint64_t>(row.cores));
      w.key("coherence_events").value(row.coherence_events);
      w.key("coherence_samples").value(row.coherence_samples);
      w.key("coherence_mean_abs_error").value(row.coherence_mae);
      w.key("coherence_top").value(row.coherence_top);
      w.key("coherence_top_percent").value(row.coherence_top_percent);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

}  // namespace hpm::analysis
