// Artifact ingestion for the analysis layer (hpmreport).
//
// Everything downstream — scoreboards, diffs, HTML reports — starts by
// reading one of the JSON documents the write side already produces
// (hpm.batch.v1/v2, hpm.metrics.v1).  These loaders wrap the harness
// parsers with *located* errors: a malformed or truncated file fails with
// the file name and the byte offset of the first bad character, never
// with a default-constructed document.
#pragma once

#include <stdexcept>
#include <string>

#include "harness/json_export.hpp"

namespace hpm::analysis {

/// Failure to load or parse an analysis input.  what() always names the
/// offending file; for syntax errors it also carries the byte offset
/// reported by the JSON parser.
class DocumentError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Read a whole file; throws DocumentError naming the path when the file
/// cannot be opened or read.
[[nodiscard]] std::string read_file(const std::string& path);

/// Load + parse an hpm.batch.v1/v2 document.  Throws DocumentError with
/// "path: ..." context on I/O errors, malformed JSON (with byte offset),
/// or an unrecognised schema.
[[nodiscard]] harness::BatchResult load_batch_file(const std::string& path);

/// Load + parse an hpm.metrics.v1 companion document, same error contract.
[[nodiscard]] harness::MetricsDocument load_metrics_file(
    const std::string& path);

}  // namespace hpm::analysis
