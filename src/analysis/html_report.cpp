#include "analysis/html_report.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace hpm::analysis {
namespace {

std::string fmt(double value, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_u(std::uint64_t value) {
  return std::to_string(value);
}

constexpr const char* kStyle = R"css(
  :root { color-scheme: light; }
  body { font: 14px/1.5 -apple-system, "Segoe UI", Roboto, sans-serif;
         margin: 2rem auto; max-width: 60rem; padding: 0 1rem;
         color: #1c2733; background: #fafbfc; }
  h1 { font-size: 1.5rem; } h2 { font-size: 1.1rem; margin: 0 0 .5rem; }
  .card { background: #fff; border: 1px solid #dde3ea; border-radius: 8px;
          padding: 1rem 1.25rem; margin: 1rem 0; }
  .badges span { display: inline-block; border-radius: 4px; padding: 0 .5em;
          margin-right: .5em; font-size: .85em; background: #eef2f6; }
  .badges .bad { background: #fdecea; color: #8a1f11; }
  .badges .warn { background: #fff4e5; color: #7a4d05; }
  table { border-collapse: collapse; margin: .5rem 0; }
  th, td { border: 1px solid #dde3ea; padding: .2rem .6rem; text-align: right; }
  th:first-child, td:first-child { text-align: left; }
  th { background: #f1f4f8; font-weight: 600; }
  .bar-actual { fill: #3b6ea5; } .bar-estimated { fill: #e0a43b; }
  .axis { stroke: #c3ccd6; stroke-width: 1; }
  .spark { stroke: #3b6ea5; stroke-width: 1.5; fill: none; }
  .label { font: 11px sans-serif; fill: #4a5763; }
  .legend { font-size: .85em; color: #4a5763; }
)css";

/// Horizontal grouped bar chart: actual vs estimated miss share per object.
void write_bar_chart(std::ostream& out, const core::Report& actual,
                     const core::Report& estimated, std::size_t top_k) {
  const auto top = actual.top(top_k);
  if (top.empty()) return;
  double max_percent = 1.0;
  for (const auto& row : top.rows()) {
    max_percent = std::max(max_percent, row.percent);
    max_percent =
        std::max(max_percent, estimated.percent_of(row.name).value_or(0.0));
  }
  const int label_w = 150;
  const int chart_w = 440;
  const int row_h = 34;
  const int height = static_cast<int>(top.size()) * row_h + 8;
  out << "<svg width=\"" << (label_w + chart_w + 60) << "\" height=\""
      << height << "\" role=\"img\">\n";
  int y = 4;
  for (const auto& row : top.rows()) {
    const double est = estimated.percent_of(row.name).value_or(0.0);
    const double wa = row.percent / max_percent * chart_w;
    const double we = est / max_percent * chart_w;
    out << "<text class=\"label\" x=\"" << (label_w - 6) << "\" y=\""
        << (y + 16) << "\" text-anchor=\"end\">" << html_escape(row.name)
        << "</text>\n";
    out << "<rect class=\"bar-actual\" x=\"" << label_w << "\" y=\"" << y
        << "\" width=\"" << fmt(wa, 1) << "\" height=\"11\"/>\n";
    out << "<rect class=\"bar-estimated\" x=\"" << label_w << "\" y=\""
        << (y + 13) << "\" width=\"" << fmt(we, 1) << "\" height=\"11\"/>\n";
    out << "<text class=\"label\" x=\"" << (label_w + wa + 4) << "\" y=\""
        << (y + 10) << "\">" << fmt(row.percent, 1) << "</text>\n";
    out << "<text class=\"label\" x=\"" << (label_w + we + 4) << "\" y=\""
        << (y + 23) << "\">" << fmt(est, 1) << "</text>\n";
    y += row_h;
  }
  out << "<line class=\"axis\" x1=\"" << label_w << "\" y1=\"0\" x2=\""
      << label_w << "\" y2=\"" << height << "\"/>\n";
  out << "</svg>\n";
  out << "<div class=\"legend\"><svg width=\"12\" height=\"10\"><rect "
         "class=\"bar-actual\" width=\"12\" height=\"10\"/></svg> actual % "
         "&nbsp; <svg width=\"12\" height=\"10\"><rect "
         "class=\"bar-estimated\" width=\"12\" height=\"10\"/></svg> "
         "estimated %</div>\n";
}

/// Miss-rate sparkline over the phase timeline.
void write_sparkline(std::ostream& out,
                     const telemetry::RunMetrics& metrics) {
  if (metrics.timeline.size() < 2) return;
  const int width = 560;
  const int height = 56;
  double max_rate = 0.0;
  for (const auto& sample : metrics.timeline) {
    max_rate = std::max(max_rate, sample.miss_rate());
  }
  if (max_rate <= 0.0) return;
  out << "<div><span class=\"legend\">miss rate over phase timeline ("
      << metrics.timeline.size() << " slices of "
      << fmt_u(metrics.timeline_every) << " cycles)</span><br>\n";
  out << "<svg width=\"" << width << "\" height=\"" << height
      << "\"><polyline class=\"spark\" points=\"";
  const std::size_t n = metrics.timeline.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n - 1) *
                     (width - 4) + 2;
    const double y = height - 4 -
                     metrics.timeline[i].miss_rate() / max_rate *
                         (height - 8);
    if (i != 0) out << ' ';
    out << fmt(x, 1) << ',' << fmt(y, 1);
  }
  out << "\"/></svg></div>\n";
}

void write_scoreboard_section(std::ostream& out,
                              const Scoreboard& scoreboard) {
  out << "<div class=\"card\"><h2>Accuracy scoreboard (top-"
      << scoreboard.options.top_k << ")</h2>\n";
  out << "<table><tr><th>run</th><th>tool</th><th>objects</th>"
         "<th>missing</th><th>mean |err| %</th><th>max |err| %</th>"
         "<th>top-k overlap</th><th>spearman</th><th>order agree</th>"
         "<th>overhead %</th></tr>\n";
  for (const auto& row : scoreboard.rows) {
    out << "<tr><td>" << html_escape(row.name) << "</td><td>"
        << html_escape(row.tool) << "</td><td>" << row.objects << "</td><td>"
        << row.missing << "</td><td>" << fmt(row.mean_abs_error)
        << "</td><td>" << fmt(row.max_abs_error) << "</td><td>"
        << fmt(row.topk_overlap, 3) << "</td><td>" << fmt(row.spearman, 3)
        << "</td><td>" << fmt(row.order_agreement, 3) << "</td><td>"
        << fmt(row.overhead_percent, 4) << "</td></tr>\n";
  }
  out << "</table></div>\n";
}

/// Per-cache-level table (multi-level hierarchies only; hpm.batch.v3).
void write_hierarchy_block(std::ostream& out,
                           const harness::BatchItem& item) {
  out << "<h3>Cache hierarchy</h3><table>"
      << "<tr><th>level</th><th>size</th><th>assoc</th><th>accesses</th>"
      << "<th>misses</th><th>miss %</th><th>writebacks</th>"
      << "<th>PMU</th></tr>";
  for (std::size_t i = 0; i < item.result.levels.size(); ++i) {
    const sim::LevelSnapshot& level = item.result.levels[i];
    out << "<tr><td>" << html_escape(level.name) << "</td><td>"
        << fmt_u(level.size_bytes) << "</td><td>" << level.associativity
        << "</td><td>" << fmt_u(level.accesses) << "</td><td>"
        << fmt_u(level.misses) << "</td><td>"
        << fmt(100.0 * level.miss_rate()) << "</td><td>"
        << fmt_u(level.writebacks) << "</td><td>"
        << (i == item.result.observe_level ? "observed" : "") << "</td></tr>";
  }
  out << "</table>\n";
}

/// Per-core and coherence tables (multi-core runs only; hpm.batch.v4).
void write_multicore_block(std::ostream& out,
                           const harness::BatchItem& item,
                           std::size_t top_k) {
  const harness::RunResult& result = item.result;
  out << "<h3>Cores (" << result.core_stats.size() << ")</h3><table>"
      << "<tr><th>core</th><th>refs</th><th>misses</th><th>miss %</th>"
      << "<th>interrupts</th><th>tool cycles</th><th>samples</th></tr>";
  for (std::size_t c = 0; c < result.core_stats.size(); ++c) {
    const sim::MachineStats& core = result.core_stats[c];
    const double miss_rate =
        core.app_refs > 0 ? 100.0 * static_cast<double>(core.app_misses) /
                                static_cast<double>(core.app_refs)
                          : 0.0;
    out << "<tr><td>core" << c << "</td><td>" << fmt_u(core.app_refs)
        << "</td><td>" << fmt_u(core.app_misses) << "</td><td>"
        << fmt(miss_rate) << "</td><td>" << fmt_u(core.interrupts)
        << "</td><td>" << fmt_u(core.tool_cycles) << "</td><td>"
        << (c < result.core_samples.size() ? fmt_u(result.core_samples[c])
                                           : std::string())
        << "</td></tr>";
  }
  out << "</table>\n";

  out << "<h3>Coherence (" << fmt_u(result.coherence_events)
      << " events, " << fmt_u(result.coherence_samples)
      << " samples)</h3><table>"
      << "<tr><th>level</th><th>invalidations</th><th>upgrades</th>"
      << "<th>sharing</th><th>forced writebacks</th></tr>";
  for (std::size_t i = 0; i < result.coherence.size(); ++i) {
    const sim::CoherenceStats& level = result.coherence[i];
    const std::string name = i < result.levels.size()
                                 ? result.levels[i].name
                                 : "L" + std::to_string(i + 1);
    out << "<tr><td>" << html_escape(name) << "</td><td>"
        << fmt_u(level.invalidations_received) << "</td><td>"
        << fmt_u(level.upgrades) << "</td><td>"
        << fmt_u(level.sharing_transitions) << "</td><td>"
        << fmt_u(level.forced_writebacks) << "</td></tr>";
  }
  out << "</table>\n";

  if (!result.coherence_actual.empty()) {
    out << "<h3>Coherence attribution</h3>\n";
    write_bar_chart(out, result.coherence_actual, result.coherence_estimated,
                    top_k);
  }
}

void write_faults_block(std::ostream& out, const harness::BatchItem& item) {
  const sim::FaultPlan& plan = item.spec.config.machine.faults;
  const sim::FaultStats& stats = item.result.fault_stats;
  out << "<h3>Injected faults</h3><table>"
      << "<tr><th>plan</th><th>value</th><th>observed</th><th>count</th></tr>"
      << "<tr><td>skid_refs</td><td>" << plan.skid_refs
      << "</td><td>skid_events</td><td>" << fmt_u(stats.skid_events)
      << "</td></tr>"
      << "<tr><td>drop_rate</td><td>" << fmt(plan.drop_rate, 4)
      << "</td><td>interrupts_dropped</td><td>"
      << fmt_u(stats.interrupts_dropped) << "</td></tr>"
      << "<tr><td>jitter_rate</td><td>" << fmt(plan.jitter_rate, 4)
      << "</td><td>reads_jittered</td><td>" << fmt_u(stats.reads_jittered)
      << "</td></tr>"
      << "<tr><td>saturate_at</td><td>" << fmt_u(plan.saturate_at)
      << "</td><td>reads_saturated</td><td>" << fmt_u(stats.reads_saturated)
      << "</td></tr>"
      << "<tr><td>reprogram_delay</td><td>" << plan.reprogram_delay_misses
      << "</td><td>reprograms_delayed</td><td>"
      << fmt_u(stats.reprograms_delayed) << "</td></tr>"
      << "<tr><td>sampler</td><td>-</td><td>rearms / discarded</td><td>"
      << fmt_u(item.result.sampler_rearms) << " / "
      << fmt_u(item.result.samples_discarded) << "</td></tr></table>\n";
}

}  // namespace

std::string html_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out += c;
    }
  }
  return out;
}

void render_html(std::ostream& out, const harness::BatchResult& batch,
                 const Scoreboard* scoreboard,
                 const harness::MetricsDocument* metrics,
                 const HtmlOptions& options) {
  out << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
      << "<meta charset=\"utf-8\">\n<title>" << html_escape(options.title)
      << "</title>\n<style>" << kStyle << "</style>\n</head>\n<body>\n";
  out << "<h1>" << html_escape(options.title) << "</h1>\n";

  out << "<div class=\"card\"><h2>Batch</h2><table>"
      << "<tr><th>runs</th><th>failed</th><th>jobs</th>"
      << "<th>virtual cycles</th><th>app misses</th><th>interrupts</th></tr>"
      << "<tr><td>" << batch.metrics.runs << "</td><td>"
      << batch.metrics.failed << "</td><td>" << batch.metrics.jobs
      << "</td><td>" << fmt_u(batch.metrics.virtual_cycles) << "</td><td>"
      << fmt_u(batch.metrics.app_misses) << "</td><td>"
      << fmt_u(batch.metrics.interrupts) << "</td></tr></table></div>\n";

  if (scoreboard != nullptr && !scoreboard->rows.empty()) {
    write_scoreboard_section(out, *scoreboard);
  }

  for (const auto& item : batch.items) {
    out << "<div class=\"card\">\n<h2>" << html_escape(item.spec.name)
        << "</h2>\n<div class=\"badges\">"
        << "<span>" << html_escape(item.spec.workload) << "</span>"
        << "<span>"
        << html_escape(
               std::string(harness::tool_kind_name(item.spec.config.tool)))
        << "</span>";
    if (!item.ok) {
      out << "<span class=\"bad\">"
          << html_escape(std::string(harness::run_outcome_name(item.outcome)))
          << "</span>";
    } else if (item.outcome == harness::RunOutcome::kRetried) {
      out << "<span class=\"warn\">retried (" << item.attempts
          << " attempts)</span>";
    }
    out << "</div>\n";
    if (!item.ok) {
      out << "<p class=\"bad\">" << html_escape(item.error) << "</p></div>\n";
      continue;
    }

    const auto& stats = item.result.stats;
    out << "<table><tr><th>refs</th><th>misses</th><th>cycles</th>"
        << "<th>interrupts</th><th>tool cycles</th><th>overhead %</th>"
        << "</tr><tr><td>" << fmt_u(stats.app_refs) << "</td><td>"
        << fmt_u(stats.app_misses) << "</td><td>"
        << fmt_u(stats.total_cycles()) << "</td><td>"
        << fmt_u(stats.interrupts) << "</td><td>"
        << fmt_u(stats.tool_cycles) << "</td><td>"
        << fmt(stats.total_cycles() > 0
                   ? 100.0 * static_cast<double>(stats.tool_cycles) /
                         static_cast<double>(stats.total_cycles())
                   : 0.0,
               4)
        << "</td></tr></table>\n";

    write_bar_chart(out, item.result.actual, item.result.estimated,
                    options.top_k);

    if (!item.result.levels.empty()) {
      write_hierarchy_block(out, item);
    }

    if (!item.result.core_stats.empty()) {
      write_multicore_block(out, item, options.top_k);
    }

    if (!item.spec.config.machine.faults.none()) {
      write_faults_block(out, item);
    }

    if (metrics != nullptr) {
      for (const auto& run : metrics->runs) {
        if (run.name == item.spec.name && run.metrics.enabled) {
          write_sparkline(out, run.metrics);
          break;
        }
      }
    }
    out << "</div>\n";
  }

  out << "</body>\n</html>\n";
}

}  // namespace hpm::analysis
