#include "analysis/consistency.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace hpm::analysis {
namespace {

double severity_of(double delta, double tolerance) {
  if (tolerance > 0.0) return delta / tolerance;
  return delta > 0.0 ? kStructuralSeverity : 0.0;
}

MetricDelta make_delta(std::string metric, const std::string& run,
                       double observed, double replayed, double tolerance) {
  MetricDelta d;
  d.metric = std::move(metric);
  d.run = run;
  d.observed = observed;
  d.replayed = replayed;
  d.delta = std::abs(observed - replayed);
  d.tolerance = tolerance;
  d.severity = severity_of(d.delta, tolerance);
  d.within = d.severity <= 1.0;
  return d;
}

/// Counter metric: delta is |observed - replayed| / max(observed, replayed),
/// so it is symmetric and well-defined when either side is zero.
MetricDelta make_relative_delta(std::string metric, const std::string& run,
                                std::uint64_t observed, std::uint64_t replayed,
                                double tolerance) {
  MetricDelta d;
  d.metric = std::move(metric);
  d.run = run;
  d.observed = static_cast<double>(observed);
  d.replayed = static_cast<double>(replayed);
  const double base = std::max(d.observed, d.replayed);
  d.delta = base > 0.0 ? std::abs(d.observed - d.replayed) / base : 0.0;
  d.tolerance = tolerance;
  d.severity = severity_of(d.delta, tolerance);
  d.within = d.severity <= 1.0;
  return d;
}

}  // namespace

std::vector<MetricDelta> consistency_deltas(
    const harness::BatchItem& observed, const harness::RunResult& replayed,
    const ConsistencyTolerances& tolerances) {
  std::vector<MetricDelta> deltas;
  const std::string& run = observed.spec.name;
  const harness::RunResult& obs = observed.result;

  // Per-object miss shares: the observation's own exact profile is the
  // reference ranking; each of its top objects must reappear in the
  // replay with a close share.
  const core::Report top = obs.actual.top(tolerances.top_k);
  for (const auto& row : top.rows()) {
    const double predicted =
        replayed.actual.percent_of(row.name).value_or(0.0);
    deltas.push_back(make_delta("miss_share(" + row.name + ")", run,
                                row.percent, predicted,
                                tolerances.share_points));
  }

  // The tool's own estimated shares: the plane PMU faults actually
  // perturb (skid mis-attributes, jitter corrupts counts), while the
  // exact profile above stays clean.  A replay is bit-exact, so a clean
  // observation matches with zero delta even here.
  const core::Report est_top = obs.estimated.top(tolerances.top_k);
  for (const auto& row : est_top.rows()) {
    const double predicted =
        replayed.estimated.percent_of(row.name).value_or(0.0);
    deltas.push_back(make_delta("est_share(" + row.name + ")", run,
                                row.percent, predicted,
                                tolerances.share_points));
  }

  // PMU-observed miss count (the counter the paper's tools are built on).
  deltas.push_back(make_relative_delta("pmu_misses", run,
                                       obs.stats.app_misses,
                                       replayed.stats.app_misses,
                                       tolerances.miss_rel));

  // Overflow interrupts delivered: dropped or saturated interrupts thin
  // this count well past any workload-model mismatch.
  deltas.push_back(make_relative_delta("interrupts", run,
                                       obs.stats.interrupts,
                                       replayed.stats.interrupts,
                                       tolerances.miss_rel));

  // Total virtual cycles: the one counter that separates cycle-model
  // variants (a doubled miss penalty roughly doubles the memory stall
  // share of the clock).
  deltas.push_back(make_relative_delta("cycles", run,
                                       obs.stats.total_cycles(),
                                       replayed.stats.total_cycles(),
                                       tolerances.cycles_rel));

  // Per-level counters exist only in hpm.batch.v3 observations; absent
  // counters cannot refute structure.
  if (!obs.levels.empty()) {
    deltas.push_back(make_delta("level_count", run,
                                static_cast<double>(obs.levels.size()),
                                static_cast<double>(replayed.levels.size()),
                                /*tolerance=*/0.0));
    if (obs.levels.size() == replayed.levels.size()) {
      for (std::size_t i = 0; i < obs.levels.size(); ++i) {
        deltas.push_back(make_delta(
            "level_miss(" + obs.levels[i].name + ")", run,
            100.0 * obs.levels[i].miss_rate(),
            100.0 * replayed.levels[i].miss_rate(),
            tolerances.level_points));
      }
    }
  }

  return deltas;
}

double worst_severity(std::span<const MetricDelta> deltas) {
  double worst = 0.0;
  for (const MetricDelta& d : deltas) worst = std::max(worst, d.severity);
  return worst;
}

std::size_t worst_delta_index(std::span<const MetricDelta> deltas) {
  std::size_t at = static_cast<std::size_t>(-1);
  double worst = -1.0;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    if (deltas[i].severity > worst) {
      worst = deltas[i].severity;
      at = i;
    }
  }
  return at;
}

}  // namespace hpm::analysis
