// Counter-consistency scoring: is a replayed machine model consistent
// with an observed counter profile?
//
// The scoreboard (scoreboard.hpp) asks how well a *tool estimate* tracks
// ground truth within one run; this module asks the inverse,
// CounterPoint-style question — given the counters one run *observed*
// (a parsed hpm.batch item, real or fault-perturbed) and the counters a
// candidate machine model *predicts* for the same workload (a fresh
// replay), which metrics agree within tolerance and which refute the
// model?  Every metric is a pure function of its two inputs, so scoring
// is deterministic and independent of how the replay was scheduled.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "harness/batch.hpp"

namespace hpm::analysis {

/// Per-metric agreement thresholds.  A delta at or below its tolerance is
/// consistent; above it, the metric refutes the candidate.  The defaults
/// absorb the cross-plane noise a tool-bearing observation carries (tool
/// refs share the cache with the application, so even the true model
/// replays within a fraction of a percent, not exactly) while still
/// separating genuinely wrong hierarchies and latencies by an order of
/// magnitude.
struct ConsistencyTolerances {
  double share_points = 1.0;  ///< per-object miss share, percent points
  double miss_rel = 0.02;     ///< PMU-observed miss count, relative
  double cycles_rel = 0.02;   ///< total virtual cycles, relative
  double level_points = 1.0;  ///< per-level miss rate, percent points
  /// Observed ground-truth objects scored per run (paper tables use 5-10).
  std::size_t top_k = 10;
};

/// One metric's observed-vs-replayed comparison.  `delta` and `tolerance`
/// share the metric's own unit (points or relative fraction); `severity`
/// is the unit-free ratio delta/tolerance used for ranking, with a
/// zero-tolerance metric (structural mismatch) mapping to kStructural.
struct MetricDelta {
  std::string metric;  ///< "miss_share(X)" | "pmu_misses" | "cycles" |
                       ///< "level_count" | "level_miss(L1)"
  std::string run;     ///< observed run name the metric came from
  double observed = 0.0;
  double replayed = 0.0;
  double delta = 0.0;
  double tolerance = 0.0;
  double severity = 0.0;
  bool within = true;
};

/// Severity assigned to a violated zero-tolerance (structural) metric:
/// finite so reports stay valid JSON, but far above any graded metric.
inline constexpr double kStructuralSeverity = 1e9;

/// Score one observed batch item against the result of replaying the same
/// (workload, options, tool) point under a candidate machine model.
/// Metrics emitted, in order:
///   * miss_share(<object>) — |observed% - replayed%| for each of the
///     observed run's top_k exact-profile objects (points);
///   * est_share(<object>) — same for the tool's *estimated* profile,
///     the plane PMU faults perturb (skid mis-attributes samples, jitter
///     corrupts counts); replays are bit-exact, so a clean observation
///     still matches with zero delta;
///   * pmu_misses — relative error on the PMU-observed miss count;
///   * interrupts — relative error on delivered overflow interrupts
///     (dropped/saturated interrupts thin this count);
///   * cycles — relative error on total virtual cycles (this is the
///     metric that separates cycle-model variants);
///   * level_count — only when the observation carries per-level counters
///     (hpm.batch.v3): a candidate with a different number of levels is
///     structurally refuted (tolerance 0);
///   * level_miss(<name>) — per-level miss-rate delta in points, when the
///     level counts match.  Names are the observation's.
/// A profile observed without per-level counters cannot refute a
/// candidate's level structure — absent counters carry no evidence, which
/// is exactly the CounterPoint semantics.
[[nodiscard]] std::vector<MetricDelta> consistency_deltas(
    const harness::BatchItem& observed, const harness::RunResult& replayed,
    const ConsistencyTolerances& tolerances = {});

/// Worst severity over a set of deltas (0.0 when empty).  A candidate is
/// consistent with the observation iff this is <= 1.0.
[[nodiscard]] double worst_severity(std::span<const MetricDelta> deltas);

/// Index of the worst delta (severity ties broken towards the earliest,
/// so reports are deterministic); npos when empty.
[[nodiscard]] std::size_t worst_delta_index(
    std::span<const MetricDelta> deltas);

}  // namespace hpm::analysis
