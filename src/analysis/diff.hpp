// Run-to-run diff engine: align two batch documents and explain what
// moved, so CI can gate on "did the numbers change?" instead of a human
// eyeballing JSON.
//
// Runs are aligned by identity — (workload, tool, run name, seed) — never
// by position, so reordering a sweep or interleaving extra runs does not
// produce false deltas.  Every numeric metric of an aligned pair is
// compared under configurable tolerances; anything beyond tolerance is a
// regression, and unmatched runs always are.  diff of a document against
// itself is empty by construction (the acceptance gate for CI self-diff).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harness/batch.hpp"
#include "util/table.hpp"

namespace hpm::analysis {

struct DiffOptions {
  /// Relative tolerance on integer counters (misses, cycles, samples…):
  /// |new - old| <= rel_tol * |old| passes.  0 = exact match required.
  double count_rel_tol = 0.0;
  /// Absolute tolerance, in percentage points, on per-object miss shares.
  double percent_abs_tol = 0.0;
};

/// One metric that differs between the two documents.
struct MetricDelta {
  std::string run;     ///< aligned run key, e.g. "tomcatv/sample"
  std::string metric;  ///< dotted path, e.g. "stats.app_misses"
  double old_value = 0.0;
  double new_value = 0.0;
  bool regression = false;  ///< beyond tolerance
};

struct DiffResult {
  std::size_t runs_compared = 0;
  std::size_t metrics_compared = 0;
  std::vector<MetricDelta> changed;     ///< every difference, tolerated or not
  std::vector<std::string> only_old;    ///< runs missing from the new document
  std::vector<std::string> only_new;    ///< runs absent from the old document
  std::size_t regressions = 0;          ///< out-of-tolerance deltas + unmatched runs

  [[nodiscard]] bool clean() const noexcept { return regressions == 0; }
};

/// Compare `older` against `newer`.  Wall-clock fields are never compared
/// (they are environment, not results).
[[nodiscard]] DiffResult diff_batches(const harness::BatchResult& older,
                                      const harness::BatchResult& newer,
                                      const DiffOptions& options = {});

/// Render the changed metrics (and unmatched runs) as a util::Table.
[[nodiscard]] util::Table diff_table(const DiffResult& diff);

}  // namespace hpm::analysis
