// Accuracy scoreboard: mechanically score every sampled / N-way run in a
// batch document against the exact per-object miss profile.
//
// The paper's contribution is judged by how closely the cheap techniques
// track ground truth (Tables 1-2); the scoreboard turns that judgement
// into numbers — per-object attribution error, top-k overlap, Spearman
// rank correlation, pairwise order agreement — computed per run from a
// parsed hpm.batch document.  Deterministic: the scoreboard is a pure
// function of the document, so scoring a checked-in golden export is
// byte-for-byte stable across platforms (see tests/golden/
// analysis_scoreboard.json).
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "harness/batch.hpp"
#include "util/table.hpp"

namespace hpm::analysis {

struct ScoreboardOptions {
  /// Ground-truth objects scored per run (the paper's tables list the top
  /// 5-8; the golden pipeline uses 10).
  std::size_t top_k = 10;
  /// Drop ground-truth objects below this miss share before scoring
  /// (0 scores everything; the paper's tables use 0.01).
  double min_percent = 0.0;
};

/// One run's accuracy against the exact profile.
struct ScoreRow {
  std::string name;      ///< run label, e.g. "tomcatv/sample"
  std::string workload;
  std::string tool;      ///< "sample" | "search"
  std::size_t objects = 0;  ///< ground-truth objects scored (<= top_k)
  std::size_t missing = 0;  ///< of those, absent from the estimate
  double mean_abs_error = 0.0;  ///< mean |actual% - estimated%|, points
  double max_abs_error = 0.0;   ///< worst single object, points
  double topk_overlap = 1.0;    ///< |top-k(actual) ∩ top-k(est)| / k
  double spearman = 1.0;        ///< rank correlation in [-1, 1]
  double order_agreement = 1.0; ///< pairwise order consistency in [0, 1]
  double overhead_percent = 0.0;  ///< tool cycles / total cycles
  std::uint64_t samples = 0;      ///< sampler runs only
  /// Per-cache-level miss rates (percent), innermost first.  Populated only
  /// for runs on a multi-level hierarchy (hpm.batch.v3 documents); empty
  /// rows keep scoreboard exports byte-identical to pre-hierarchy builds.
  std::vector<std::pair<std::string, double>> level_miss_rates;
  std::uint64_t observe_level = 0;  ///< meaningful when levels are present

  // -- Multi-core runs only (hpm.batch.v4; zero on single-core rows so
  //    their exports stay byte-identical) ----------------------------------
  unsigned cores = 0;  ///< simulated cores (0 = single-core run)
  std::uint64_t coherence_events = 0;   ///< ground-truth MESI events
  std::uint64_t coherence_samples = 0;  ///< coherence samples taken
  /// Mean |actual% - estimated%| over the top-k coherence objects.
  double coherence_mae = 0.0;
  /// Most-contended object by the exact coherence profile ("" when none).
  std::string coherence_top;
  /// Its exact share of coherence events, percent.
  double coherence_top_percent = 0.0;
};

struct Scoreboard {
  ScoreboardOptions options;
  std::vector<ScoreRow> rows;  ///< document order (skipped runs omitted)
};

/// Spearman rank correlation of two paired vectors (average ranks for
/// ties).  Degenerate inputs: fewer than two points or two constant
/// vectors score 1.0; one constant vector against a varying one scores
/// 0.0 (no ordering information to agree with).
[[nodiscard]] double spearman_rank_correlation(std::span<const double> a,
                                               std::span<const double> b);

/// Score every successful run that produced an estimate.  Ground truth is
/// the run's own exact profile ("actual"); a run whose exact profile is
/// empty borrows the profile of a tool="none" run of the same workload
/// and seed, and is skipped (not scored) when no baseline exists.
[[nodiscard]] Scoreboard score_batch(const harness::BatchResult& batch,
                                     const ScoreboardOptions& options = {});

/// Render as an aligned util::Table (one row per scored run).
[[nodiscard]] util::Table scoreboard_table(const Scoreboard& scoreboard);

/// Export as an "hpm.analysis.v1" JSON document (see docs/analysis.md).
void export_json(std::ostream& out, const Scoreboard& scoreboard,
                 int indent = 2);

}  // namespace hpm::analysis
