// Self-contained HTML report: one file, no external dependencies — all
// CSS inline, all charts hand-written SVG — so a sweep's results can be
// attached to a CI run or mailed around and still render anywhere.
//
// Content per run: per-object miss bar chart (actual vs estimated share),
// machine stats, outcome/attempt and injected-fault blocks when present,
// and — when an hpm.metrics.v1 companion is supplied — a phase-timeline
// sparkline of the miss rate.  Deterministic output: no timestamps, no
// random ids, so the same inputs render byte-identical HTML.
#pragma once

#include <ostream>
#include <string>

#include "analysis/scoreboard.hpp"
#include "harness/batch.hpp"
#include "harness/json_export.hpp"

namespace hpm::analysis {

struct HtmlOptions {
  std::string title = "hpmreport";
  std::size_t top_k = 10;  ///< objects charted per run
};

/// Escape text for inclusion in HTML body or attribute context.
[[nodiscard]] std::string html_escape(std::string_view text);

/// Render the full report.  `scoreboard` and `metrics` are optional
/// (nullptr skips the section); `metrics` runs are matched to batch items
/// by run name.
void render_html(std::ostream& out, const harness::BatchResult& batch,
                 const Scoreboard* scoreboard,
                 const harness::MetricsDocument* metrics,
                 const HtmlOptions& options = {});

}  // namespace hpm::analysis
