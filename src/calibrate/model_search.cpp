#include "calibrate/model_search.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace hpm::calibrate {
namespace {

harness::RunConfig config_for(const Candidate& candidate,
                              const harness::RunConfig& base) {
  harness::RunConfig config = base;
  config.machine.hierarchy = candidate.hierarchy;
  config.machine.cycles = candidate.cycles;
  return config;
}

/// Evaluate `batch` candidates against `points` as ONE BatchRunner batch
/// (candidate-major spec order), then score each candidate.  Appends the
/// verdicts to `out` and returns the number of replays executed.
std::size_t evaluate_round(const std::vector<Candidate>& batch,
                           const harness::BatchResult& observed,
                           const std::vector<harness::ReplayPoint>& points,
                           const ModelSearchOptions& options,
                           std::vector<CandidateVerdict>& out) {
  std::vector<harness::RunSpec> specs;
  specs.reserve(batch.size() * points.size());
  for (const Candidate& candidate : batch) {
    const harness::RunConfig config = config_for(candidate, options.base);
    for (const harness::ReplayPoint& point : points) {
      specs.push_back(harness::replay_spec(point, config));
    }
  }

  harness::BatchRunner::Options runner_options;
  runner_options.jobs = options.jobs;
  runner_options.on_progress = options.on_progress;
  const harness::BatchResult replays =
      harness::BatchRunner(runner_options).run(specs);

  for (std::size_t c = 0; c < batch.size(); ++c) {
    CandidateVerdict verdict;
    verdict.candidate = batch[c];
    for (std::size_t p = 0; p < points.size(); ++p) {
      const harness::BatchItem& replay = replays.items[c * points.size() + p];
      const harness::BatchItem& item = observed.items[points[p].item_index];
      if (!replay.ok) {
        // A candidate that cannot even run the workload (e.g. the budget
        // blows up under an absurd latency) is structurally refuted.
        analysis::MetricDelta failed;
        failed.metric = "replay_failed";
        failed.run = points[p].name;
        failed.tolerance = 0.0;
        failed.delta = 1.0;
        failed.severity = analysis::kStructuralSeverity;
        failed.within = false;
        verdict.deltas.push_back(std::move(failed));
        continue;
      }
      std::vector<analysis::MetricDelta> deltas =
          analysis::consistency_deltas(item, replay.result,
                                       options.tolerances);
      verdict.deltas.insert(verdict.deltas.end(),
                            std::make_move_iterator(deltas.begin()),
                            std::make_move_iterator(deltas.end()));
    }
    verdict.inconsistency = analysis::worst_severity(verdict.deltas);
    verdict.consistent = verdict.inconsistency <= 1.0;
    verdict.worst = analysis::worst_delta_index(verdict.deltas);
    out.push_back(std::move(verdict));
  }
  return specs.size();
}

/// Ranking order: inconsistency first, then — among candidates the
/// counters cannot tell apart — parsimony: grid candidates before refined
/// ones, fewer levels, less total cache, name.  Counters that are equally
/// consistent with several models carry no evidence to prefer the complex
/// one, so the simplest consistent hypothesis ranks first (and an
/// unfaulted self-calibration ranks its generating spec #1).
void rank(std::vector<CandidateVerdict>& verdicts) {
  std::stable_sort(
      verdicts.begin(), verdicts.end(),
      [](const CandidateVerdict& a, const CandidateVerdict& b) {
        if (a.inconsistency != b.inconsistency) {
          return a.inconsistency < b.inconsistency;
        }
        if (a.candidate.round != b.candidate.round) {
          return a.candidate.round < b.candidate.round;
        }
        const CandidateComplexity ca = candidate_complexity(a.candidate);
        const CandidateComplexity cb = candidate_complexity(b.candidate);
        if (ca.levels != cb.levels) return ca.levels < cb.levels;
        if (ca.total_bytes != cb.total_bytes) {
          return ca.total_bytes < cb.total_bytes;
        }
        return a.candidate.name < b.candidate.name;
      });
}

}  // namespace

CalibrationResult calibrate(const harness::BatchResult& observed,
                            const std::vector<Candidate>& grid,
                            const ModelSearchOptions& options) {
  if (grid.empty()) {
    throw std::invalid_argument("calibrate: empty candidate grid");
  }

  CalibrationResult result;
  result.points = harness::replay_points(observed, &result.skipped);
  if (result.points.empty()) {
    throw std::invalid_argument(
        "calibrate: observation has no replayable runs");
  }

  std::unordered_set<std::string> evaluated;
  std::vector<Candidate> pending;
  for (const Candidate& candidate : grid) {
    if (evaluated.insert(candidate_key(candidate)).second) {
      pending.push_back(candidate);
    }
  }

  for (std::size_t round = 0; round <= options.refine_rounds; ++round) {
    if (pending.empty()) break;  // refinement converged: no unseen neighbor
    result.replays += evaluate_round(pending, observed, result.points,
                                     options, result.ranked);
    result.rounds += 1;
    rank(result.ranked);

    pending.clear();
    if (round == options.refine_rounds) break;
    const std::size_t seeds =
        std::min(options.refine_top, result.ranked.size());
    for (std::size_t i = 0; i < seeds; ++i) {
      for (Candidate& neighbor : candidate_neighbors(
               result.ranked[i].candidate, round + 1)) {
        if (evaluated.insert(candidate_key(neighbor)).second) {
          pending.push_back(std::move(neighbor));
        }
      }
    }
  }

  result.explained =
      !result.ranked.empty() && result.ranked.front().consistent;
  return result;
}

}  // namespace hpm::calibrate
