#include "calibrate/candidates.hpp"

#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace hpm::calibrate {
namespace {

std::vector<sim::LevelConfig> canonical_levels(
    const sim::HierarchyConfig& hierarchy) {
  return sim::resolve_levels(hierarchy, sim::CacheConfig{});
}

Candidate make_candidate(std::string label, sim::HierarchyConfig hierarchy,
                         sim::Cycles penalty, std::size_t round) {
  Candidate candidate;
  candidate.name = std::move(label) + "/p" + std::to_string(penalty);
  candidate.hierarchy = std::move(hierarchy);
  candidate.cycles.cache_miss_penalty = penalty;
  candidate.round = round;
  return candidate;
}

/// One neighbor with `mutate` applied to a copy of the seed's resolved
/// levels; dropped (no push) when the mutated geometry is invalid.
template <typename Fn>
void push_geometry_neighbor(std::vector<Candidate>& out, const Candidate& seed,
                            std::size_t round, Fn&& mutate) {
  std::vector<sim::LevelConfig> levels = canonical_levels(seed.hierarchy);
  mutate(levels);
  for (const sim::LevelConfig& level : levels) {
    if (!level.cache.valid()) return;
  }
  sim::HierarchyConfig hierarchy;
  hierarchy.levels = std::move(levels);
  hierarchy.observe_level = seed.hierarchy.observe_level;
  // Label before moving `hierarchy` into the candidate: evaluation order
  // of function arguments is unspecified.
  std::string label = sim::format_hierarchy_spec(hierarchy.levels);
  out.push_back(make_candidate(std::move(label), std::move(hierarchy),
                               seed.cycles.cache_miss_penalty, round));
}

}  // namespace

std::string candidate_key(const Candidate& candidate) {
  return sim::format_hierarchy_spec(canonical_levels(candidate.hierarchy)) +
         "/p" + std::to_string(candidate.cycles.cache_miss_penalty);
}

CandidateComplexity candidate_complexity(const Candidate& candidate) {
  CandidateComplexity complexity;
  for (const sim::LevelConfig& level : canonical_levels(candidate.hierarchy)) {
    complexity.levels += 1;
    complexity.total_bytes += level.cache.size_bytes;
  }
  return complexity;
}

const std::vector<sim::Cycles>& default_penalties() {
  static const std::vector<sim::Cycles> penalties = {25, 50, 100};
  return penalties;
}

std::vector<Candidate> candidate_grid(
    const std::vector<std::string>& specs,
    const std::vector<sim::Cycles>& penalties) {
  const std::vector<std::string>& spec_axis =
      specs.empty() ? sim::hierarchy_preset_names() : specs;
  const std::vector<sim::Cycles>& penalty_axis =
      penalties.empty() ? default_penalties() : penalties;

  std::vector<Candidate> grid;
  grid.reserve(spec_axis.size() * penalty_axis.size());
  std::unordered_set<std::string> seen;
  for (const std::string& spec : spec_axis) {
    sim::HierarchyConfig hierarchy;
    if (!sim::hierarchy_preset(spec, hierarchy)) {
      hierarchy = sim::parse_hierarchy_spec(spec);  // throws on bad grammar
    }
    for (const sim::Cycles penalty : penalty_axis) {
      Candidate candidate =
          make_candidate(spec, hierarchy, penalty, /*round=*/0);
      if (seen.insert(candidate_key(candidate)).second) {
        grid.push_back(std::move(candidate));
      }
    }
  }
  return grid;
}

std::vector<Candidate> candidate_neighbors(const Candidate& seed,
                                           std::size_t round) {
  std::vector<Candidate> out;

  // Latency axis: miss penalty x2 and /2.
  const sim::Cycles penalty = seed.cycles.cache_miss_penalty;
  const std::string spec =
      sim::format_hierarchy_spec(canonical_levels(seed.hierarchy));
  out.push_back(make_candidate(spec, seed.hierarchy, penalty * 2, round));
  if (penalty >= 2) {
    out.push_back(make_candidate(spec, seed.hierarchy, penalty / 2, round));
  }

  // Geometry axes: per-level size and associativity, x2 and /2.
  const std::size_t num_levels = canonical_levels(seed.hierarchy).size();
  for (std::size_t i = 0; i < num_levels; ++i) {
    push_geometry_neighbor(out, seed, round, [i](auto& levels) {
      levels[i].cache.size_bytes *= 2;
    });
    push_geometry_neighbor(out, seed, round, [i](auto& levels) {
      levels[i].cache.size_bytes /= 2;
    });
    push_geometry_neighbor(out, seed, round, [i](auto& levels) {
      levels[i].cache.associativity *= 2;
    });
    push_geometry_neighbor(out, seed, round, [i](auto& levels) {
      levels[i].cache.associativity /= 2;
    });
  }
  return out;
}

}  // namespace hpm::calibrate
