// Calibration explanation report: the ranked verdict list of a
// ModelSearch run, rendered three ways — a text table for the terminal, a
// machine-readable "hpm.calibrate.v1" JSON document, and a self-contained
// HTML page (inline CSS, no external assets).  All three renderings are
// pure functions of the CalibrationResult, so they inherit the search's
// determinism: byte-identical output at any --jobs.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>

#include "calibrate/model_search.hpp"

namespace hpm::calibrate {

struct ReportOptions {
  std::string title = "hpmcalibrate";
  /// Violated metrics listed per candidate in JSON/HTML (the worst one is
  /// always included); the rest are summarized by count.
  std::size_t max_violations = 8;
  int indent = 2;  ///< JSON indent
  /// Include the volatile build sub-block in the JSON "meta" block
  /// (compiler, git describe, ...).  Off by default so the pinned golden
  /// stays environment-independent; the hpmcalibrate CLI turns it on.
  bool include_build = false;
};

/// Fixed-width text table: rank, verdict, candidate, inconsistency and the
/// refuting metric (with observed/replayed/delta) for refuted candidates.
[[nodiscard]] std::string calibration_table(const CalibrationResult& result);

/// "hpm.calibrate.v1" JSON document — see docs/calibration.md.
void export_json(std::ostream& out, const CalibrationResult& result,
                 const ReportOptions& options = {});

/// Self-contained HTML explanation report.
void render_html(std::ostream& out, const CalibrationResult& result,
                 const ReportOptions& options = {});

}  // namespace hpm::calibrate
