// ModelSearch: counter-driven model refutation and self-calibration.
//
// CounterPoint's core loop, inverted from the rest of the harness: instead
// of asking "what do the counters say about the program", ask "which
// machine models could have produced these counters".  Given an observed
// counter profile (a parsed hpm.batch.v2/v3 document — real, simulated or
// fault-perturbed) and a candidate space of (hierarchy, cycle model)
// hypotheses, replay every observed workload point under every candidate
// on fresh shared-nothing Machines, score each candidate's predicted
// counters against the observation (analysis/consistency.hpp), and rank:
// candidates within tolerance on every metric are CONSISTENT, the rest
// are REFUTED by their worst metric.  An optional greedy refinement loop
// perturbs the best candidates (candidate_neighbors) for a bounded number
// of rounds.
//
// Determinism: candidate generation is pure, every round's replays run as
// one BatchRunner batch (results collected in submission order), scoring
// is a pure function of (observation, replay), and the final ranking is a
// stable sort on (inconsistency, name).  Hence the full search — and the
// report rendered from it — is byte-identical at any --jobs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/consistency.hpp"
#include "calibrate/candidates.hpp"
#include "harness/batch.hpp"
#include "harness/replay.hpp"

namespace hpm::calibrate {

struct ModelSearchOptions {
  /// Worker threads per replay batch (0 = hardware concurrency).  Affects
  /// wall-clock only, never results.
  unsigned jobs = 1;
  analysis::ConsistencyTolerances tolerances{};
  /// Tool parameters, budgets and costs for the replays.  The machine
  /// model inside (cache/hierarchy/cycles) is overwritten per candidate;
  /// the fault plan should stay none() — replays predict clean hardware,
  /// which is exactly how a faulted observation gets refuted.
  harness::RunConfig base{};
  /// Greedy refinement: rounds beyond the grid (0 = grid only) and how
  /// many of the current best candidates seed neighbors each round.
  std::size_t refine_rounds = 0;
  std::size_t refine_top = 3;
  /// Called after each replay completes (see BatchRunner::ProgressFn).
  harness::BatchRunner::ProgressFn on_progress;
};

/// One candidate's scored verdict against the whole observation.
struct CandidateVerdict {
  Candidate candidate;
  /// Every metric delta, replay-point major, in document order.
  std::vector<analysis::MetricDelta> deltas;
  /// Worst severity over `deltas` (<= 1.0 means consistent).  Violated
  /// structural metrics and failed replays score kStructuralSeverity.
  double inconsistency = 0.0;
  bool consistent = false;
  /// Index into `deltas` of the refuting metric (earliest worst); npos
  /// when `deltas` is empty.
  std::size_t worst = static_cast<std::size_t>(-1);
};

struct CalibrationResult {
  /// Every evaluated candidate, best first: stable-sorted by
  /// (inconsistency, round, level count, total cache bytes, name) — ties
  /// the counters cannot break fall to parsimony, so the simplest
  /// consistent model ranks first.
  std::vector<CandidateVerdict> ranked;
  /// The observation points that were replayed, in document order.
  std::vector<harness::ReplayPoint> points;
  /// Observed item indices that could not be replayed (failed runs,
  /// unknown workloads).
  std::vector<std::size_t> skipped;
  /// True when at least one candidate is consistent — the profile is
  /// *explained*.  False flags an unexplainable profile (every candidate
  /// refuted: perturbed counters, or a machine outside the search space).
  bool explained = false;
  std::size_t rounds = 0;   ///< rounds executed (1 = grid only)
  std::size_t replays = 0;  ///< total replay runs executed
};

/// Run the search.  Throws std::invalid_argument when `grid` is empty or
/// the observation yields no replayable points.
[[nodiscard]] CalibrationResult calibrate(
    const harness::BatchResult& observed, const std::vector<Candidate>& grid,
    const ModelSearchOptions& options = {});

}  // namespace hpm::calibrate
