#include "calibrate/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "analysis/html_report.hpp"  // html_escape
#include "harness/json_export.hpp"   // JsonWriter, tool_kind_name
#include "harness/provenance.hpp"    // write_meta

namespace hpm::calibrate {
namespace {

std::string fmt(double value, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string verdict_name(const CandidateVerdict& verdict) {
  return verdict.consistent ? "CONSISTENT" : "REFUTED";
}

/// "metric: observed X, replayed Y, delta D > tol T" — the one-line
/// explanation of why a candidate is refuted.
std::string refutation(const analysis::MetricDelta& delta) {
  return delta.metric + ": observed " + fmt(delta.observed) + ", replayed " +
         fmt(delta.replayed) + ", delta " + fmt(delta.delta) + " > " +
         fmt(delta.tolerance);
}

std::size_t violation_count(const CandidateVerdict& verdict) {
  return static_cast<std::size_t>(
      std::count_if(verdict.deltas.begin(), verdict.deltas.end(),
                    [](const analysis::MetricDelta& d) { return !d.within; }));
}

void write_delta(harness::JsonWriter& w, const analysis::MetricDelta& delta) {
  w.begin_object();
  w.key("metric").value(delta.metric);
  w.key("run").value(delta.run);
  w.key("observed").value(delta.observed);
  w.key("replayed").value(delta.replayed);
  w.key("delta").value(delta.delta);
  w.key("tolerance").value(delta.tolerance);
  w.key("severity").value(delta.severity);
  w.key("within").value(delta.within);
  w.end_object();
}

}  // namespace

std::string calibration_table(const CalibrationResult& result) {
  std::ostringstream out;
  std::size_t name_width = 9;  // "candidate"
  for (const CandidateVerdict& v : result.ranked) {
    name_width = std::max(name_width, v.candidate.name.size());
  }

  char line[512];
  std::snprintf(line, sizeof(line), "%4s  %-10s  %-*s  %13s  %s\n", "rank",
                "verdict", static_cast<int>(name_width), "candidate",
                "inconsistency", "why");
  out << line;
  for (std::size_t i = 0; i < result.ranked.size(); ++i) {
    const CandidateVerdict& v = result.ranked[i];
    std::string why = "-";
    if (!v.consistent && v.worst < v.deltas.size()) {
      why = refutation(v.deltas[v.worst]);
    }
    std::snprintf(line, sizeof(line), "%4zu  %-10s  %-*s  %13s  %s\n", i + 1,
                  verdict_name(v).c_str(), static_cast<int>(name_width),
                  v.candidate.name.c_str(), fmt(v.inconsistency).c_str(),
                  why.c_str());
    out << line;
  }

  out << '\n'
      << (result.explained
              ? "profile EXPLAINED: at least one candidate is consistent"
              : "profile UNEXPLAINABLE within this candidate space: every "
                "candidate refuted")
      << " (" << result.ranked.size() << " candidates, " << result.replays
      << " replays, " << result.rounds << " round"
      << (result.rounds == 1 ? "" : "s") << ")\n";
  if (!result.skipped.empty()) {
    out << result.skipped.size()
        << " observed run(s) skipped (failed or unknown workload)\n";
  }
  return std::move(out).str();
}

void export_json(std::ostream& out, const CalibrationResult& result,
                 const ReportOptions& options) {
  harness::JsonWriter w(out, options.indent);
  w.begin_object();
  w.key("schema").value("hpm.calibrate.v1");
  harness::write_meta(w, options.include_build);
  w.key("explained").value(result.explained);
  w.key("rounds").value(static_cast<std::uint64_t>(result.rounds));
  w.key("replays").value(static_cast<std::uint64_t>(result.replays));

  w.key("points").begin_array();
  for (const harness::ReplayPoint& point : result.points) {
    w.begin_object();
    w.key("name").value(point.name);
    w.key("workload").value(point.workload);
    w.key("tool").value(harness::tool_kind_name(point.tool));
    w.key("item").value(static_cast<std::uint64_t>(point.item_index));
    w.end_object();
  }
  w.end_array();

  w.key("skipped").begin_array();
  for (const std::size_t index : result.skipped) {
    w.value(static_cast<std::uint64_t>(index));
  }
  w.end_array();

  w.key("candidates").begin_array();
  for (std::size_t i = 0; i < result.ranked.size(); ++i) {
    const CandidateVerdict& v = result.ranked[i];
    w.begin_object();
    w.key("rank").value(static_cast<std::uint64_t>(i + 1));
    w.key("name").value(v.candidate.name);
    w.key("spec").value(candidate_key(v.candidate));
    w.key("hierarchy").value(sim::format_hierarchy_spec(sim::resolve_levels(
        v.candidate.hierarchy, sim::CacheConfig{})));
    w.key("miss_penalty")
        .value(static_cast<std::uint64_t>(v.candidate.cycles.cache_miss_penalty));
    w.key("round").value(static_cast<std::uint64_t>(v.candidate.round));
    w.key("verdict").value(verdict_name(v));
    w.key("inconsistency").value(v.inconsistency);
    w.key("metrics_total").value(static_cast<std::uint64_t>(v.deltas.size()));
    w.key("metrics_violated")
        .value(static_cast<std::uint64_t>(violation_count(v)));
    if (v.worst < v.deltas.size()) {
      w.key("worst");
      write_delta(w, v.deltas[v.worst]);
    }
    w.key("violations").begin_array();
    std::size_t listed = 0;
    for (const analysis::MetricDelta& delta : v.deltas) {
      if (delta.within) continue;
      if (listed == options.max_violations) break;
      write_delta(w, delta);
      ++listed;
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

void render_html(std::ostream& out, const CalibrationResult& result,
                 const ReportOptions& options) {
  using analysis::html_escape;
  out << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
      << "<meta charset=\"utf-8\">\n<title>" << html_escape(options.title)
      << "</title>\n<style>\n"
      << "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;"
         "max-width:72em;padding:0 1em;color:#1a1a2e}\n"
      << "table{border-collapse:collapse;margin:1em 0;width:100%}\n"
      << "th,td{border:1px solid #d0d0e0;padding:.3em .6em;"
         "text-align:left;font-variant-numeric:tabular-nums}\n"
      << "th{background:#f0f0f8}\n"
      << ".consistent{background:#e6f6e6}\n"
      << ".refuted{background:#fbeaea}\n"
      << ".banner{padding:.6em 1em;border-radius:4px;margin:1em 0;"
         "font-weight:600}\n"
      << ".ok{background:#e6f6e6;border:1px solid #7ab87a}\n"
      << ".bad{background:#fbeaea;border:1px solid #c98484}\n"
      << "code{background:#f4f4fa;padding:0 .3em}\n"
      << "</style>\n</head>\n<body>\n"
      << "<h1>" << html_escape(options.title) << "</h1>\n";

  out << "<div class=\"banner " << (result.explained ? "ok" : "bad") << "\">"
      << (result.explained
              ? "Profile explained: at least one candidate model is "
                "consistent with the observed counters."
              : "Profile unexplainable: every candidate model is refuted "
                "&mdash; the counters were perturbed, or the machine lies "
                "outside the search space.")
      << "</div>\n";

  out << "<p>" << result.ranked.size() << " candidates scored over "
      << result.points.size() << " observed run(s) in " << result.rounds
      << " round(s), " << result.replays << " replays total";
  if (!result.skipped.empty()) {
    out << "; " << result.skipped.size() << " observed run(s) skipped";
  }
  out << ".</p>\n";

  out << "<table>\n<tr><th>rank</th><th>verdict</th><th>candidate</th>"
         "<th>hierarchy</th><th>penalty</th><th>round</th>"
         "<th>inconsistency</th><th>violated</th><th>refuted by</th></tr>\n";
  for (std::size_t i = 0; i < result.ranked.size(); ++i) {
    const CandidateVerdict& v = result.ranked[i];
    out << "<tr class=\"" << (v.consistent ? "consistent" : "refuted")
        << "\"><td>" << (i + 1) << "</td><td>" << verdict_name(v)
        << "</td><td><code>" << html_escape(v.candidate.name)
        << "</code></td><td><code>"
        << html_escape(sim::format_hierarchy_spec(sim::resolve_levels(
               v.candidate.hierarchy, sim::CacheConfig{})))
        << "</code></td><td>" << v.candidate.cycles.cache_miss_penalty
        << "</td><td>" << v.candidate.round << "</td><td>"
        << fmt(v.inconsistency) << "</td><td>" << violation_count(v) << "/"
        << v.deltas.size() << "</td><td>"
        << (!v.consistent && v.worst < v.deltas.size()
                ? html_escape(refutation(v.deltas[v.worst]))
                : std::string("&mdash;"))
        << "</td></tr>\n";
  }
  out << "</table>\n";

  out << "<h2>Observed runs replayed</h2>\n<table>\n"
         "<tr><th>#</th><th>run</th><th>workload</th><th>tool</th></tr>\n";
  for (const harness::ReplayPoint& point : result.points) {
    out << "<tr><td>" << point.item_index << "</td><td>"
        << html_escape(point.name) << "</td><td>"
        << html_escape(point.workload) << "</td><td>"
        << harness::tool_kind_name(point.tool) << "</td></tr>\n";
  }
  out << "</table>\n</body>\n</html>\n";
}

}  // namespace hpm::calibrate
