// Candidate machine models for the calibration search.
//
// A candidate is one (memory hierarchy, cycle model) hypothesis about the
// machine that produced an observed counter profile.  The search space is
// spanned two ways: a deterministic *grid* (hierarchy specs or presets
// crossed with a small set of miss penalties — CounterPoint's "families of
// machine models"), and *neighbors* of a promising candidate (geometry and
// latency perturbations) for greedy refinement.  Candidates are value
// types; everything here is a pure function, so candidate generation is
// deterministic and independent of evaluation order.
#pragma once

#include <string>
#include <vector>

#include "sim/cycle_model.hpp"
#include "sim/memory_hierarchy.hpp"

namespace hpm::calibrate {

/// One machine-model hypothesis.
struct Candidate {
  /// Display name, e.g. "paper/p50" or "L1:32k:64:2,LLC:2m:64:8/p100".
  std::string name;
  sim::HierarchyConfig hierarchy;
  sim::CycleModel cycles;
  /// 0 for grid candidates, k for candidates minted in refinement round k.
  std::size_t round = 0;
};

/// Canonical identity of a candidate: the canonical hierarchy spelling
/// (format_hierarchy_spec) plus the miss penalty.  Two candidates with the
/// same key predict identical counters, so the search dedups on it.
[[nodiscard]] std::string candidate_key(const Candidate& candidate);

/// Resolved level count and total cache bytes of a candidate — its
/// "complexity" for the parsimony tie-break: among equally consistent
/// candidates the search ranks the simplest model first (fewest levels,
/// then least total cache), CounterPoint's Occam's-razor reading of
/// counters that cannot tell two models apart.
struct CandidateComplexity {
  std::size_t levels = 0;
  std::uint64_t total_bytes = 0;
};
[[nodiscard]] CandidateComplexity candidate_complexity(
    const Candidate& candidate);

/// The default miss-penalty axis of the grid: {25, 50, 100} cycles
/// (half / paper §3 / double).
[[nodiscard]] const std::vector<sim::Cycles>& default_penalties();

/// Build the grid: every spec crossed with every penalty, in the given
/// order.  Each spec may be a preset name ("paper", "2level", "3level") or
/// an explicit NAME:SIZE[:LINE[:ASSOC]] list; the candidate is named after
/// the spelling the caller used.  Throws std::invalid_argument on a spec
/// that is neither.  Empty `specs` defaults to hierarchy_preset_names();
/// empty `penalties` defaults to default_penalties().
[[nodiscard]] std::vector<Candidate> candidate_grid(
    const std::vector<std::string>& specs,
    const std::vector<sim::Cycles>& penalties);

/// Geometry/latency perturbations of `seed` for greedy refinement: miss
/// penalty x2 and /2, and for each level its size x2 and /2 and its
/// associativity x2 and /2 — each yielding one candidate when the
/// perturbed geometry is still valid.  Deterministic order; the caller
/// dedups against already-evaluated keys.  `round` labels the new
/// candidates.
[[nodiscard]] std::vector<Candidate> candidate_neighbors(
    const Candidate& seed, std::size_t round);

}  // namespace hpm::calibrate
