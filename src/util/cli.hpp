// Minimal command-line flag parsing for bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`.  Unknown
// flags are an error so typos in experiment sweeps fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hpm::util {

class Cli {
 public:
  /// Parses argv. On error, records a message retrievable via error().
  Cli(int argc, const char* const* argv,
      std::vector<std::string> known_flags);

  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::string get(std::string_view name,
                                std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(std::string_view name,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace hpm::util
