// Small statistics helpers used by the report layer and the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hpm::util {

/// Streaming accumulator (Welford) for mean/variance plus min/max.
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile with linear interpolation; `p` in [0,100].  Copies and sorts.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Normalise counts to percentages of their sum (empty-safe; all-zero-safe).
[[nodiscard]] std::vector<double> to_percentages(std::span<const std::uint64_t> counts);

/// Spearman rank-agreement-style metric used to score technique output
/// against ground truth: fraction of adjacent pairs in `estimated` that are
/// ordered consistently with `actual`.  1.0 = perfectly consistent.
[[nodiscard]] double pairwise_order_agreement(std::span<const double> actual,
                                              std::span<const double> estimated);

}  // namespace hpm::util
