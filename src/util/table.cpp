#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace hpm::util {

Table::Table(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  aligns_.resize(headers_.size(), Align::kLeft);
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string_view text) {
  if (rows_.empty()) row();
  rows_.back().emplace_back(text);
  return *this;
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return cell(ss.str());
}

Table& Table::blank() { return cell(""); }

Table& Table::separator() {
  separators_.push_back(rows_.size());
  return *this;
}

void Table::render(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = widths[c] - text.size();
      os << ' ';
      if (aligns_[c] == Align::kRight) os << std::string(pad, ' ') << text;
      else os << text << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };

  rule();
  emit(headers_);
  rule();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (std::find(separators_.begin(), separators_.end(), i) !=
        separators_.end()) {
      rule();
    }
    emit(rows_[i]);
  }
  rule();
}

std::string Table::to_string() const {
  std::ostringstream ss;
  render(ss);
  return ss.str();
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      const bool quote = cells[c].find_first_of(",\"\n") != std::string::npos;
      if (!quote) {
        os << cells[c];
      } else {
        os << '"';
        for (char ch : cells[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

std::string log_bar(double value, double min_positive, double max_value,
                    std::size_t width) {
  if (value <= 0.0 || max_value <= min_positive || width == 0) return "";
  const double lo = std::log10(min_positive);
  const double hi = std::log10(max_value);
  const double x = std::clamp(std::log10(value), lo, hi);
  const auto n = static_cast<std::size_t>(
      std::lround((x - lo) / (hi - lo) * static_cast<double>(width)));
  return std::string(std::max<std::size_t>(n, 1), '#');
}

}  // namespace hpm::util
