// Fixed-width text table and CSV rendering for the bench harnesses, which
// regenerate the paper's tables/figures as aligned console output plus
// machine-readable CSV.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace hpm::util {

enum class Align { kLeft, kRight };

/// A simple accumulating table: set headers, add rows of strings, render.
/// Numeric convenience overloads format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<Align> aligns = {});

  /// Begin a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(std::string_view text);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);
  Table& cell(double value, int precision = 1);
  /// An intentionally blank cell (the paper's tables have many).
  Table& blank();

  /// Insert a horizontal separator line before the next row.
  Table& separator();

  void render(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices preceded by a rule
};

/// Render a log-scale horizontal bar for console "figures" (Figures 3 and 4
/// in the paper use log-scale y axes; we print log-scale bars).
[[nodiscard]] std::string log_bar(double value, double min_positive,
                                  double max_value, std::size_t width);

}  // namespace hpm::util
