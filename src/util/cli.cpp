#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

namespace hpm::util {

Cli::Cli(int argc, const char* const* argv,
         std::vector<std::string> known_flags) {
  auto known = [&](std::string_view name) {
    return std::find(known_flags.begin(), known_flags.end(), name) !=
           known_flags.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      // `--flag value` form: consume the next token if it is not a flag.
      if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!known(name)) {
      error_ = "unknown flag: --" + name;
      return;
    }
    values_[name] = value;
  }
}

bool Cli::has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string Cli::get(std::string_view name, std::string_view fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? std::string(fallback) : it->second;
}

std::int64_t Cli::get_int(std::string_view name, std::int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 0);
}

std::uint64_t Cli::get_uint(std::string_view name,
                            std::uint64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 0);
}

double Cli::get_double(std::string_view name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(std::string_view name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes" ||
         it->second == "on";
}

}  // namespace hpm::util
