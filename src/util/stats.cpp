#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hpm::util {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

std::vector<double> to_percentages(std::span<const std::uint64_t> counts) {
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  std::vector<double> out(counts.size(), 0.0);
  if (total == 0) return out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = 100.0 * static_cast<double>(counts[i]) / static_cast<double>(total);
  }
  return out;
}

double pairwise_order_agreement(std::span<const double> actual,
                                std::span<const double> estimated) {
  const std::size_t n = std::min(actual.size(), estimated.size());
  if (n < 2) return 1.0;
  std::size_t consistent = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      ++pairs;
      const double da = actual[i] - actual[j];
      const double de = estimated[i] - estimated[j];
      if ((da >= 0 && de >= 0) || (da <= 0 && de <= 0)) ++consistent;
    }
  }
  return static_cast<double>(consistent) / static_cast<double>(pairs);
}

}  // namespace hpm::util
