// Deterministic pseudo-random number generation for the simulator.
//
// The whole repository is required to be bit-for-bit reproducible (the
// perturbation experiments of Figure 3 compare instrumented and
// uninstrumented runs of the *same* instruction stream), so all randomness
// flows through explicitly seeded generators owned by the caller.  No code
// in this project uses std::rand or random_device.
#pragma once

#include <cstdint>

namespace hpm::util {

/// SplitMix64: tiny, high-quality 64-bit mixer.  Used both as a standalone
/// generator for cheap decisions (e.g. random cache replacement) and to seed
/// Xoshiro256** from a single 64-bit seed.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the project's general-purpose generator.  Fast, 256-bit
/// state, passes BigCrush; more than adequate for workload synthesis and
/// pseudo-random sampling intervals.
class Xoshiro256 {
 public:
  constexpr explicit Xoshiro256(std::uint64_t seed) noexcept : s_{0, 0, 0, 0} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); modulo reduction (the bias for the
  /// bounds used in this project, far below 2^32, is negligible).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace hpm::util
