// ijpeg-like image encoder (SPEC95 132.ijpeg).
//
// A DCT-based block encoder over a heap-allocated RGB image.  The heap
// allocation order reproduces the paper's object names exactly: the third
// block lands at 0x141020000 (the image, ~85% of misses) and the second at
// 0x14101e000, with the static jpeg_compressed_data output buffer taking
// most of the rest — Table 1's ijpeg rows.  Heavy per-block DCT compute
// gives ijpeg by far the lowest miss rate of the suite, which is why its
// instrumentation perturbation stands out in Figure 3.
#pragma once

#include "workloads/kernels_common.hpp"
#include "workloads/workload.hpp"

namespace hpm::workloads {

class Ijpeg final : public Workload {
 public:
  explicit Ijpeg(const WorkloadOptions& options = {});

  [[nodiscard]] std::string_view name() const override { return "ijpeg"; }
  void setup(sim::Machine& machine) override;
  void run(sim::Machine& machine) override;

  [[nodiscard]] std::uint64_t output_bytes() const noexcept {
    return output_bytes_;
  }
  [[nodiscard]] sim::Addr image_block() const noexcept { return image_; }

 private:
  void generate_image(sim::Machine& m);
  void encode_pass(sim::Machine& m, int quality);

  std::uint64_t width_;
  std::uint64_t height_;
  std::uint64_t passes_;
  std::uint64_t seed_;
  std::uint64_t output_bytes_ = 0;

  sim::Addr work_buffer_ = 0;     // heap #1 -> 0x141000000 (row pointers)
  sim::Addr row_ptrs_ = 0;        // alias into work_buffer_
  sim::Addr entropy_buffer_ = 0;  // heap #2 -> 0x14101e000
  sim::Addr image_ = 0;           // heap #3 -> 0x141020000 (the 84.7% object)
  sim::Addr output_ = 0;        // static jpeg_compressed_data
  sim::Addr lum_quant_ = 0;     // static std_luminance_quant_tbl
  sim::Addr chrom_quant_ = 0;   // static std_chrominance_quant_tbl
};

}  // namespace hpm::workloads
