// su2cor-like quark propagator kernel (SPEC95 103.su2cor).
//
// Reproduces the paper's su2cor profile: one dominant lattice array U
// (~57% of misses) plus a tail of medium arrays (R, S, W2, B) and many
// small ones.  Crucially, the access pattern *changes between phases*: the
// early "sweep" phase works on R/S/W2/B while U is almost idle, and the
// late "intact" phase hammers U.  This is the behaviour that defeats the
// 2-way search in the paper's Table 2 (U's region is ranked low early and
// never refined).
#pragma once

#include <array>

#include "workloads/kernels_common.hpp"
#include "workloads/workload.hpp"

namespace hpm::workloads {

class Su2cor final : public Workload {
 public:
  explicit Su2cor(const WorkloadOptions& options = {});

  [[nodiscard]] std::string_view name() const override { return "su2cor"; }
  void setup(sim::Machine& machine) override;
  void run(sim::Machine& machine) override;

 private:
  double scale_;
  std::uint64_t iterations_;
  Array1D<double> u_, r_, s_, w2_intact_, w2_sweep_, b_;
  static constexpr int kSmallArrays = 10;
  std::array<Array1D<double>, kSmallArrays> g_;
};

}  // namespace hpm::workloads
