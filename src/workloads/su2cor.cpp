#include "workloads/su2cor.hpp"

#include <string>

namespace hpm::workloads {

namespace {
// Sizes in doubles at scale 1.0 (U 8 MB; R 3.28 MB; S 3.17 MB; W2 2.5 MB
// each; B 1.5 MB; G* 1.25 MB each).
constexpr std::uint64_t kU = 1024 * 1024;
constexpr std::uint64_t kR = 640 * 640;
constexpr std::uint64_t kS = 630 * 630;
constexpr std::uint64_t kW2 = 320 * 1024;
constexpr std::uint64_t kB = 192 * 1024;
constexpr std::uint64_t kG = 160 * 1024;
constexpr std::uint64_t kDefaultIterations = 3;
constexpr std::uint64_t kExec = 3;
}  // namespace

Su2cor::Su2cor(const WorkloadOptions& options)
    : scale_(options.scale),
      iterations_(options.iterations ? options.iterations
                                     : kDefaultIterations) {}

void Su2cor::setup(sim::Machine& machine) {
  // The area scales with scale^2 to match the 2-D kernels.
  const double a = scale_ * scale_;
  auto count = [&](std::uint64_t base) {
    return scaled(base, a, 512);
  };
  u_ = Array1D<double>::make_static(machine, "U", count(kU));
  r_ = Array1D<double>::make_static(machine, "R", count(kR));
  s_ = Array1D<double>::make_static(machine, "S", count(kS));
  w2_intact_ =
      Array1D<double>::make_static(machine, "W2-intact", count(kW2));
  w2_sweep_ = Array1D<double>::make_static(machine, "W2-sweep", count(kW2));
  b_ = Array1D<double>::make_static(machine, "B", count(kB));
  for (int i = 0; i < kSmallArrays; ++i) {
    g_[i] = Array1D<double>::make_static(
        machine, "G" + std::to_string(i), count(kG));
  }
}

void Su2cor::run(sim::Machine& machine) {
  for (std::uint64_t it = 0; it < iterations_; ++it) {
    // -- SWEEP phase: Monte Carlo link update.  R, S, W2-sweep, B and the
    //    small working arrays are hot; U is untouched.
    map_pass(machine, r_, s_, kExec);  // R read, S write
    rmw_pass(machine, r_, kExec);      // second R touch
    rmw_pass(machine, s_, kExec);      // second S touch
    rmw_pass(machine, w2_sweep_, kExec);
    rmw_pass(machine, b_, kExec);
    for (auto& g : g_) rmw_pass(machine, g, kExec);

    // -- INTACT phase: propagator measurement.  U dominates; W2-intact is
    //    refreshed once.
    for (int rep = 0; rep < 5; ++rep) rmw_pass(machine, u_, kExec);
    rmw_pass(machine, w2_intact_, kExec);
  }
}

}  // namespace hpm::workloads
