#include "workloads/compress.hpp"

#include <string>
#include <vector>

#include "util/prng.hpp"

namespace hpm::workloads {

namespace {
constexpr std::uint64_t kInputBytes = 4 * 1024 * 1024;
constexpr std::uint64_t kDefaultRounds = 3;
constexpr std::uint64_t kHashSize = 69'001;  // compress95's HSIZE
constexpr std::uint32_t kClearCode = 256;
constexpr std::uint32_t kFirstFree = 257;
constexpr std::uint32_t kMaxCode = 65'536;
constexpr std::uint64_t kExecPerByte = 8;  // LZW bookkeeping per input byte
}  // namespace

Compress::Compress(const WorkloadOptions& options)
    : input_bytes_(scaled(kInputBytes, options.scale * options.scale, 4096)),
      rounds_(options.iterations ? options.iterations : kDefaultRounds),
      seed_(options.seed) {}

void Compress::setup(sim::Machine& machine) {
  auto& as = machine.address_space();
  orig_ = as.define_static("orig_text_buffer", input_bytes_);
  comp_ = as.define_static("comp_text_buffer", input_bytes_ * 2);
  htab_ = as.define_static("htab", kHashSize * sizeof(std::int64_t));
  codetab_ = as.define_static("codetab", kHashSize * sizeof(std::uint16_t));
  tab_prefix_ = as.define_static("tab_prefix", kMaxCode * sizeof(std::uint16_t));
  tab_suffix_ = as.define_static("tab_suffix", kMaxCode);
}

// Pseudo-text: words drawn from a synthetic vocabulary, space separated.
// Vocabulary size tunes the LZW match length and thus the compression
// ratio (~0.55-0.65 with 4096 words, matching the paper's orig/comp miss
// split).
void Compress::generate_input(sim::Machine& m) {
  util::Xoshiro256 rng(seed_);
  std::vector<std::string> vocab;
  vocab.reserve(4096);
  for (int w = 0; w < 4096; ++w) {
    const std::uint64_t len = 3 + rng.next_below(10);
    std::string word;
    for (std::uint64_t i = 0; i < len; ++i) {
      word.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    vocab.push_back(std::move(word));
  }
  std::uint64_t pos = 0;
  std::uint64_t checksum = 0;
  while (pos < input_bytes_) {
    const std::string& word = vocab[rng.next_below(vocab.size())];
    for (char ch : word) {
      if (pos >= input_bytes_) break;
      m.store<std::uint8_t>(orig_ + pos, static_cast<std::uint8_t>(ch));
      checksum = checksum * 131 + static_cast<std::uint8_t>(ch);
      ++pos;
      m.exec(2);
    }
    if (pos < input_bytes_) {
      m.store<std::uint8_t>(orig_ + pos, ' ');
      checksum = checksum * 131 + ' ';
      ++pos;
      m.exec(2);
    }
  }
  input_checksum_ = checksum;
}

std::uint64_t Compress::lzw_compress(sim::Machine& m) {
  // Reset tables (cheap: fill is a streaming write over htab/codetab).
  for (std::uint64_t i = 0; i < kHashSize; ++i) {
    m.store<std::int64_t>(htab_ + i * 8, -1);
    m.exec(1);
  }
  std::uint32_t free_ent = kFirstFree;
  std::uint64_t out = 0;
  auto emit = [&](std::uint32_t code) {
    m.store<std::uint16_t>(comp_ + out, static_cast<std::uint16_t>(code));
    out += 2;
    m.exec(2);
  };

  std::uint32_t ent = m.load<std::uint8_t>(orig_);
  for (std::uint64_t i = 1; i < input_bytes_; ++i) {
    const std::uint32_t c = m.load<std::uint8_t>(orig_ + i);
    const std::int64_t fcode =
        (static_cast<std::int64_t>(c) << 16) + static_cast<std::int64_t>(ent);
    std::uint64_t h = ((c << 8) ^ ent) % kHashSize;
    // compress95's secondary probe displacement: fixed per initial hash,
    // and coprime to the (prime) table size, so the probe sequence visits
    // every slot.
    const std::uint64_t disp = h == 0 ? 1 : kHashSize - h;
    m.exec(kExecPerByte);

    bool found = false;
    while (true) {
      const std::int64_t slot = m.load<std::int64_t>(htab_ + h * 8);
      if (slot == -1) break;
      if (slot == fcode) {
        ent = m.load<std::uint16_t>(codetab_ + h * 2);
        found = true;
        break;
      }
      h = h >= disp ? h - disp : h + kHashSize - disp;
      m.exec(3);
    }
    if (found) continue;

    emit(ent);
    if (free_ent < kMaxCode) {
      m.store<std::int64_t>(htab_ + h * 8, fcode);
      m.store<std::uint16_t>(codetab_ + h * 2,
                             static_cast<std::uint16_t>(free_ent));
      ++free_ent;
    } else {
      // Table full: emit CLEAR and start over (block compression).
      emit(kClearCode);
      for (std::uint64_t k = 0; k < kHashSize; ++k) {
        m.store<std::int64_t>(htab_ + k * 8, -1);
        m.exec(1);
      }
      free_ent = kFirstFree;
    }
    ent = c;
  }
  emit(ent);
  return out;
}

void Compress::lzw_decompress(sim::Machine& m, std::uint64_t comp_len) {
  std::uint32_t free_ent = kFirstFree;
  std::uint64_t pos = 0;   // output position in orig
  std::uint64_t in = 0;    // input position in comp
  std::uint64_t checksum = 0;
  // de_stack lives on the simulated stack like compress95's; it is small
  // and cache-resident.
  m.address_space().push_frame("decompress");
  const sim::Addr stack_base =
      m.address_space().define_local("de_stack", kMaxCode);
  std::uint64_t sp = 0;

  auto read_code = [&]() -> std::int32_t {
    if (in >= comp_len) return -1;
    const std::uint16_t v = m.load<std::uint16_t>(comp_ + in);
    in += 2;
    m.exec(2);
    return v;
  };
  auto output = [&](std::uint8_t ch) {
    m.store<std::uint8_t>(orig_ + pos, ch);
    checksum = checksum * 131 + ch;
    ++pos;
    m.exec(1);
  };

  std::int32_t code = read_code();
  if (code < 0) {
    m.address_space().pop_frame();
    return;
  }
  std::uint32_t oldcode = static_cast<std::uint32_t>(code);
  std::uint8_t finchar = static_cast<std::uint8_t>(code);
  output(finchar);

  while ((code = read_code()) >= 0) {
    if (code == static_cast<std::int32_t>(kClearCode)) {
      free_ent = kFirstFree;
      code = read_code();
      if (code < 0) break;
      oldcode = static_cast<std::uint32_t>(code);
      finchar = static_cast<std::uint8_t>(code);
      output(finchar);
      continue;
    }
    const std::uint32_t incode = static_cast<std::uint32_t>(code);
    std::uint32_t cur = incode;
    if (cur >= free_ent) {  // KwKwK
      m.store<std::uint8_t>(stack_base + sp, finchar);
      ++sp;
      cur = oldcode;
      m.exec(2);
    }
    while (cur >= kFirstFree) {
      m.store<std::uint8_t>(stack_base + sp,
                            m.load<std::uint8_t>(tab_suffix_ + cur));
      ++sp;
      cur = m.load<std::uint16_t>(tab_prefix_ + cur * 2);
      m.exec(3);
    }
    finchar = static_cast<std::uint8_t>(cur);
    output(finchar);
    while (sp > 0) {
      --sp;
      output(m.load<std::uint8_t>(stack_base + sp));
    }
    if (free_ent < kMaxCode) {
      m.store<std::uint16_t>(tab_prefix_ + free_ent * 2,
                             static_cast<std::uint16_t>(oldcode));
      m.store<std::uint8_t>(tab_suffix_ + free_ent, finchar);
      ++free_ent;
    }
    oldcode = incode;
  }
  m.address_space().pop_frame();
  roundtrip_ok_ = (pos == input_bytes_) && (checksum == input_checksum_);
}

void Compress::run(sim::Machine& machine) {
  generate_input(machine);
  for (std::uint64_t r = 0; r < rounds_; ++r) {
    compressed_bytes_ = lzw_compress(machine);
    lzw_decompress(machine, compressed_bytes_);
  }
}

}  // namespace hpm::workloads
