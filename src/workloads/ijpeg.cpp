#include "workloads/ijpeg.hpp"

#include <array>
#include <cmath>

#include "util/prng.hpp"

namespace hpm::workloads {

namespace {
constexpr std::uint64_t kWidth = 2048;
constexpr std::uint64_t kHeight = 1536;
constexpr std::uint64_t kDefaultPasses = 2;
// Matches the paper's heap-name arithmetic: first allocation is 0x1e000
// bytes, so the second lands at 0x14101e000 and the third at 0x141020000.
constexpr std::uint64_t kWorkBufferBytes = 0x1e000;
constexpr std::uint64_t kExecPerBlock = 1200;  // DCT + quant + entropy

// Simplified JPEG luminance quantisation values (zigzag order ignored).
constexpr std::array<std::uint16_t, 64> kLumQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};
constexpr std::array<std::uint16_t, 64> kChromQuant = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};
}  // namespace

Ijpeg::Ijpeg(const WorkloadOptions& options)
    : width_(scaled(kWidth, options.scale, 64) & ~std::uint64_t{7}),
      height_(scaled(kHeight, options.scale, 64) & ~std::uint64_t{7}),
      passes_(options.iterations ? options.iterations : kDefaultPasses),
      seed_(options.seed) {}

void Ijpeg::setup(sim::Machine& machine) {
  auto& as = machine.address_space();
  // Output buffer and quantisation tables are statics, as in libjpeg.
  output_ = as.define_static("jpeg_compressed_data", width_ * height_);
  lum_quant_ = as.define_static("std_luminance_quant_tbl",
                                kLumQuant.size() * sizeof(std::uint16_t));
  chrom_quant_ = as.define_static("std_chrominance_quant_tbl",
                                  kChromQuant.size() * sizeof(std::uint16_t));
  for (std::uint64_t i = 0; i < 64; ++i) {
    machine.store<std::uint16_t>(lum_quant_ + i * 2, kLumQuant[i]);
    machine.store<std::uint16_t>(chrom_quant_ + i * 2, kChromQuant[i]);
  }
  // Heap blocks, in the order that yields the paper's block names:
  // 0x1e000 bytes, then 0x2000 bytes, putting the image at 0x141020000.
  work_buffer_ = as.malloc(kWorkBufferBytes, /*site=*/1);   // row pointers
  row_ptrs_ = work_buffer_;
  entropy_buffer_ = as.malloc(0x2000, /*site=*/2);          // 0x14101e000
  image_ = as.malloc(width_ * height_ * 3, /*site=*/3);     // 0x141020000
}

void Ijpeg::generate_image(sim::Machine& m) {
  util::Xoshiro256 rng(seed_);
  // Smooth gradients plus noise: realistic enough for DCT energy compaction.
  for (std::uint64_t y = 0; y < height_; ++y) {
    // Row pointer table, like libjpeg's sample array access.
    m.store<std::uint64_t>(row_ptrs_ + y * 8, image_ + y * width_ * 3);
    for (std::uint64_t x = 0; x < width_; ++x) {
      const std::uint64_t noise = rng.next();
      const auto r = static_cast<std::uint8_t>((x * 255 / width_) +
                                               (noise & 7));
      const auto g = static_cast<std::uint8_t>((y * 255 / height_) +
                                               ((noise >> 3) & 7));
      const auto b = static_cast<std::uint8_t>(((x + y) & 0xff));
      const sim::Addr px = image_ + (y * width_ + x) * 3;
      m.store<std::uint8_t>(px, r);
      m.store<std::uint8_t>(px + 1, g);
      m.store<std::uint8_t>(px + 2, b);
      m.exec(4);
    }
  }
}

void Ijpeg::encode_pass(sim::Machine& m, int quality) {
  std::uint64_t out = 0;
  std::array<double, 64> block{};
  const std::uint64_t bw = width_ / 8;
  const std::uint64_t bh = height_ / 8;
  for (std::uint64_t by = 0; by < bh; ++by) {
    for (std::uint64_t bx = 0; bx < bw; ++bx) {
      for (int channel = 0; channel < 3; ++channel) {
        // Gather the 8x8 block through the row-pointer table.
        for (std::uint64_t v = 0; v < 8; ++v) {
          const sim::Addr row =
              m.load<std::uint64_t>(row_ptrs_ + (by * 8 + v) * 8);
          for (std::uint64_t u = 0; u < 8; ++u) {
            block[v * 8 + u] = static_cast<double>(m.load<std::uint8_t>(
                row + (bx * 8 + u) * 3 + static_cast<std::uint64_t>(channel)));
          }
        }
        // The DCT/quant/entropy compute happens on registers; charge its
        // basic-block cost.  (A coarse 2-coefficient transform keeps host
        // time reasonable while producing data-dependent output bytes.)
        double dc = 0.0;
        double ac = 0.0;
        for (int i = 0; i < 64; ++i) {
          dc += block[static_cast<std::size_t>(i)];
          ac += block[static_cast<std::size_t>(i)] *
                ((i % 2 == 0) ? 1.0 : -1.0);
        }
        m.exec(kExecPerBlock);
        const sim::Addr qt = channel == 0 ? lum_quant_ : chrom_quant_;
        const auto q0 = m.load<std::uint16_t>(qt);
        const auto q1 = m.load<std::uint16_t>(qt + 2);
        const auto qdc = static_cast<std::int32_t>(
            dc / (8.0 * (q0 + quality)));
        const auto qac = static_cast<std::int32_t>(
            ac / (8.0 * (q1 + quality)));
        // "Entropy coded" output: a small, data-dependent byte burst staged
        // through the (revolving) entropy buffer, then into
        // jpeg_compressed_data.
        const std::uint64_t burst = 6 +
            (static_cast<std::uint64_t>(std::abs(qdc) + std::abs(qac)) % 17);
        for (std::uint64_t k = 0; k < burst && out < width_ * height_ - 1;
             ++k) {
          const auto byte = static_cast<std::uint8_t>(
              (qdc >> (k % 8)) ^ static_cast<std::int32_t>(k * 37) ^ qac);
          m.store<std::uint8_t>(entropy_buffer_ + ((out + k) % 0x2000), byte);
          m.store<std::uint8_t>(output_ + out, byte);
          ++out;
        }
        m.exec(16);
      }
    }
  }
  output_bytes_ = out;
}

void Ijpeg::run(sim::Machine& machine) {
  generate_image(machine);
  for (std::uint64_t p = 0; p < passes_; ++p) {
    encode_pass(machine, static_cast<int>(4 + p * 4));
  }
}

}  // namespace hpm::workloads
