#include "workloads/synthetic.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hpm::workloads {

SyntheticWorkload::SyntheticWorkload(SyntheticSpec spec)
    : spec_(std::move(spec)) {
  for (const auto& phase : spec_.phases) {
    if (phase.sweeps.size() != spec_.arrays.size()) {
      throw std::invalid_argument(
          "SyntheticSpec: phase sweep vector size != array count");
    }
    if (spec_.lockstep) {
      for (auto s : phase.sweeps) {
        if (s > 1) {
          throw std::invalid_argument(
              "SyntheticSpec: lockstep sweeps are 0/1 (weight via sizes — "
              "back-to-back re-touches of a line cannot miss)");
        }
      }
    }
  }
}

void SyntheticWorkload::setup(sim::Machine& machine) {
  auto& as = machine.address_space();
  arrays_.clear();
  arrays_.reserve(spec_.arrays.size());
  for (const auto& a : spec_.arrays) {
    if (a.gap_before > 0 && !a.on_heap) {
      as.reserve_data_gap(a.gap_before);
    }
    if (a.on_heap) {
      arrays_.push_back(
          Array1D<double>::make_heap(machine, a.bytes / sizeof(double),
                                     a.site));
    } else {
      arrays_.push_back(Array1D<double>::make_static(
          machine, a.name, a.bytes / sizeof(double)));
    }
  }
}

void SyntheticWorkload::run(sim::Machine& machine) {
  constexpr std::uint64_t kDoublesPerLine = 8;
  for (std::uint32_t it = 0; it < spec_.iterations; ++it) {
    for (const auto& phase : spec_.phases) {
      for (std::uint32_t rep = 0; rep < phase.repetitions; ++rep) {
        if (spec_.lockstep) {
          // Proportional (Bresenham) interleave: each participating array
          // advances through its lines at a rate proportional to its size,
          // so any measurement window sees per-array miss shares equal to
          // the global shares.
          std::uint64_t max_lines = 0;
          for (std::size_t i = 0; i < arrays_.size(); ++i) {
            if (phase.sweeps[i] > 0) {
              max_lines = std::max(max_lines,
                                   arrays_[i].size() / kDoublesPerLine);
            }
          }
          std::vector<std::uint64_t> cursor(arrays_.size(), 0);
          for (std::uint64_t step = 1; step <= max_lines; ++step) {
            const std::uint32_t rot = line_rotation(
                step, static_cast<std::uint32_t>(arrays_.size()));
            for (std::size_t k = 0; k < arrays_.size(); ++k) {
              const std::size_t i = (rot + k) % arrays_.size();
              if (phase.sweeps[i] == 0) continue;
              const std::uint64_t lines_i =
                  arrays_[i].size() / kDoublesPerLine;
              const std::uint64_t target = step * lines_i / max_lines;
              while (cursor[i] < target) {
                const std::uint64_t e = cursor[i] * kDoublesPerLine;
                arrays_[i].set(e, arrays_[i].get(e) * 0.5 + 1.0);
                machine.exec(spec_.exec_per_access);
                ++cursor[i];
              }
            }
          }
        } else {
          for (std::size_t i = 0; i < arrays_.size(); ++i) {
            for (std::uint32_t s = 0; s < phase.sweeps[i]; ++s) {
              rmw_pass(machine, arrays_[i], spec_.exec_per_access);
            }
          }
        }
      }
    }
  }
}

std::vector<double> SyntheticWorkload::expected_shares(
    std::uint64_t line_size) const {
  std::vector<double> weight(spec_.arrays.size(), 0.0);
  double total = 0.0;
  for (const auto& phase : spec_.phases) {
    for (std::size_t i = 0; i < spec_.arrays.size(); ++i) {
      // Either way one miss per line per sweep: lockstep touches each line
      // once; sequential passes touch every element but still miss once.
      const double lines = static_cast<double>(spec_.arrays[i].bytes) /
                           static_cast<double>(line_size);
      const double w = static_cast<double>(phase.sweeps[i]) *
                       phase.repetitions * lines;
      weight[i] += w;
      total += w;
    }
  }
  if (total > 0) {
    for (auto& w : weight) w = 100.0 * w / total;
  }
  return weight;
}

SyntheticSpec uniform_spec(std::uint32_t arrays, std::uint64_t bytes_each,
                           std::uint32_t iterations) {
  SyntheticSpec spec;
  spec.name = "uniform";
  spec.iterations = iterations;
  SyntheticPhase phase;
  for (std::uint32_t i = 0; i < arrays; ++i) {
    spec.arrays.push_back({"ARR" + std::to_string(i), bytes_each});
    phase.sweeps.push_back(1);
  }
  spec.phases.push_back(std::move(phase));
  return spec;
}

SyntheticSpec hotspot_spec(std::uint32_t arrays, std::uint64_t bytes_each,
                           double hot_percent, std::uint32_t iterations) {
  if (arrays < 2) throw std::invalid_argument("hotspot_spec: need >= 2");
  SyntheticSpec spec;
  spec.name = "hotspot";
  spec.iterations = iterations;
  SyntheticPhase phase;
  // hot gets h sweeps, the others 1 each: h / (h + n - 1) = p/100.
  const double p = hot_percent / 100.0;
  const auto rest = static_cast<double>(arrays - 1);
  const auto hot = static_cast<std::uint32_t>(
      p * rest / (1.0 - p) + 0.5);
  spec.arrays.push_back({"HOT", bytes_each});
  phase.sweeps.push_back(hot == 0 ? 1 : hot);
  for (std::uint32_t i = 1; i < arrays; ++i) {
    spec.arrays.push_back({"COLD" + std::to_string(i), bytes_each});
    phase.sweeps.push_back(1);
  }
  spec.phases.push_back(std::move(phase));
  return spec;
}

SyntheticSpec figure2_spec(std::uint64_t bytes_each,
                           std::uint32_t iterations) {
  SyntheticSpec spec;
  spec.name = "figure2";
  spec.iterations = iterations;
  spec.lockstep = true;
  // Address order: A..D fill the lower region (57.5% combined), E and F
  // the upper one (35% + 7.5%).  Sizes give Figure 2's bar weights: no
  // array in the lower region reaches E's share on its own, and the span
  // midpoint falls inside D nearer its *end*, so the first 2-way split
  // snaps to D's end — putting all of A..D on one side, exactly the
  // situation of the figure.  `bytes_each` scales the whole layout (it is
  // the 10%-unit).
  spec.arrays = {{"A", bytes_each},          {"B", bytes_each},
                 {"C", bytes_each * 2},      {"D", bytes_each * 7 / 4},
                 {"E", bytes_each * 7 / 2},  {"F", bytes_each * 3 / 4}};
  SyntheticPhase phase;
  phase.sweeps = {1, 1, 1, 1, 1, 1};  // 10/10/20/17.5/35/7.5 percent
  spec.phases.push_back(std::move(phase));
  return spec;
}

SyntheticSpec phased_spec(std::uint64_t bytes_each,
                          std::uint32_t iterations) {
  SyntheticSpec spec;
  spec.name = "phased";
  spec.iterations = iterations;
  spec.lockstep = true;
  spec.arrays = {{"HOT_EARLY", bytes_each * 4},
                 {"HOT_LATE", bytes_each * 4},
                 {"STEADY", bytes_each}};
  // A warm-up phase where everything is hot (so the search measures every
  // region nonzero at least once), then alternating idle phases: HOT_LATE
  // fully idle, then HOT_EARLY fully idle — the applu/Figure 5 pattern in
  // its sharpest form.
  spec.phases.push_back({{1, 1, 1}, 1});
  spec.phases.push_back({{1, 0, 1}, 1});
  spec.phases.push_back({{0, 1, 1}, 1});
  return spec;
}

SyntheticSpec default_synthetic_spec(const WorkloadOptions& options) {
  SyntheticSpec spec;
  spec.lockstep = true;
  const auto bytes = [&](std::uint64_t base) {
    return scaled(base, options.scale, 4096);
  };
  // Lockstep sweeps weight shares by line count, so sizes 4:2:1 give a
  // 4:2:1 miss profile — exact ground truth for tests and goldens.
  spec.arrays = {{"BIG", bytes(2 * 1024 * 1024)},
                 {"MED", bytes(1024 * 1024)},
                 {"SMALL", bytes(512 * 1024)}};
  spec.phases.push_back({{1, 1, 1}, 1});
  spec.iterations = options.iterations != 0
                        ? static_cast<std::uint32_t>(options.iterations)
                        : 12;
  return spec;
}

}  // namespace hpm::workloads
