// Multi-core sharing kernels: the workloads behind the coherence-counter
// reproduction (Table 7 of this repo's extension; the paper's machinery
// generalized to MESI traffic).
//
// Each kernel is a ThreadedWorkload: run() drives the machine's cores in a
// deterministic round-robin (core 0 first in every slice), so the combined
// reference stream is a pure function of the options and the core count —
// byte-identical across hosts, repeat runs and any --jobs setting.  The
// kernels exercise the three canonical coherence patterns:
//
//   * false_sharing     — each core read-modify-writes its *own* counter,
//     but the counters share a cache line, so every write invalidates every
//     other core's copy (line ping-pong with zero logical sharing);
//   * true_sharing      — every core read-modify-writes the *same* counter
//     (a contended reduction variable);
//   * producer_consumer — core 0 writes a buffer window, the other cores
//     read it (forced writebacks and sharing transitions, few upgrades).
//
// Every kernel also streams a core-private lane array, so the regular miss
// profile has a large non-coherent component — attribution must separate
// "misses" from "coherence events", which is exactly the point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/kernels_common.hpp"
#include "workloads/workload.hpp"

namespace hpm::workloads {

/// Base for kernels that drive a multi-core machine.  run() interleaves
/// per-core slices round-robin via Machine::set_active_core and restores
/// core 0 afterwards; on a single-core machine only the core-0 lane runs.
class ThreadedWorkload : public Workload {
 public:
  void run(sim::Machine& machine) final;

 protected:
  /// Total round-robin slices for this run.
  [[nodiscard]] virtual std::uint64_t num_slices(
      const sim::Machine& machine) const = 0;
  /// One core's share of one slice; called with `core` active.
  virtual void run_slice(sim::Machine& machine, unsigned core,
                         std::uint64_t slice) = 0;
};

/// Per-core counters packed into one cache line ("SHARED_SLOTS") plus a
/// core-private streaming lane ("PRIVATE_LANES").  Nearly all coherence
/// events land on SHARED_SLOTS.
class FalseSharing final : public ThreadedWorkload {
 public:
  explicit FalseSharing(const WorkloadOptions& options);
  [[nodiscard]] std::string_view name() const override {
    return "false_sharing";
  }
  void setup(sim::Machine& machine) override;

 protected:
  [[nodiscard]] std::uint64_t num_slices(
      const sim::Machine& machine) const override;
  void run_slice(sim::Machine& machine, unsigned core,
                 std::uint64_t slice) override;

 private:
  std::uint64_t slices_;
  std::uint64_t lane_elems_;
  Array1D<double> shared_;
  Array1D<double> lanes_;
};

/// One contended counter ("HOT_COUNTER") every core read-modify-writes,
/// a read-shared table ("SHARED_TABLE") and private lanes.
class TrueSharing final : public ThreadedWorkload {
 public:
  explicit TrueSharing(const WorkloadOptions& options);
  [[nodiscard]] std::string_view name() const override {
    return "true_sharing";
  }
  void setup(sim::Machine& machine) override;

 protected:
  [[nodiscard]] std::uint64_t num_slices(
      const sim::Machine& machine) const override;
  void run_slice(sim::Machine& machine, unsigned core,
                 std::uint64_t slice) override;

 private:
  std::uint64_t slices_;
  std::uint64_t table_elems_;
  std::uint64_t lane_elems_;
  Array1D<double> counter_;
  Array1D<double> table_;
  Array1D<double> lanes_;
};

/// Core 0 fills a window of "RING_BUFFER"; the remaining cores read it in
/// the same slice.  Dirty lines are flushed by the consumers' reads (forced
/// writebacks) and re-invalidated by the next production pass.
class ProducerConsumer final : public ThreadedWorkload {
 public:
  explicit ProducerConsumer(const WorkloadOptions& options);
  [[nodiscard]] std::string_view name() const override {
    return "producer_consumer";
  }
  void setup(sim::Machine& machine) override;

 protected:
  [[nodiscard]] std::uint64_t num_slices(
      const sim::Machine& machine) const override;
  void run_slice(sim::Machine& machine, unsigned core,
                 std::uint64_t slice) override;

 private:
  std::uint64_t slices_;
  std::uint64_t buffer_elems_;
  std::uint64_t lane_elems_;
  Array1D<double> buffer_;
  Array1D<double> lanes_;
};

/// The sharing kernel names accepted by make_workload, in a fixed order:
/// {"false_sharing", "true_sharing", "producer_consumer"}.
[[nodiscard]] const std::vector<std::string>& sharing_workload_names();

}  // namespace hpm::workloads
