#include "workloads/tomcatv.hpp"

namespace hpm::workloads {

namespace {
constexpr std::uint64_t kBaseN = 600;          // 600*600*8 = 2.88 MB/array
constexpr std::uint64_t kDefaultIterations = 4;
constexpr std::uint64_t kExec = 3;             // compute instrs per access
}  // namespace

Tomcatv::Tomcatv(const WorkloadOptions& options)
    : n_(scaled(kBaseN, options.scale)),
      iterations_(options.iterations ? options.iterations
                                     : kDefaultIterations) {}

void Tomcatv::setup(sim::Machine& machine) {
  // Declaration order mirrors the Fortran common block.
  x_ = Array2D<double>::make_static(machine, "X", n_, n_);
  y_ = Array2D<double>::make_static(machine, "Y", n_, n_);
  rx_ = Array2D<double>::make_static(machine, "RX", n_, n_);
  ry_ = Array2D<double>::make_static(machine, "RY", n_, n_);
  aa_ = Array2D<double>::make_static(machine, "AA", n_, n_);
  dd_ = Array2D<double>::make_static(machine, "DD", n_, n_);
  d_ = Array2D<double>::make_static(machine, "D", n_, n_);
}

// Residual: read the mesh coordinates X, Y; write residuals RX, RY.
void Tomcatv::residual_pass(sim::Machine& m) {
  for (std::uint64_t i = 0; i < n_; ++i) {
    for (std::uint64_t j = 0; j < n_; ++j) {
      const double xv = x_.get(i, j);
      const double yv = y_.get(i, j);
      rx_.set(i, j, xv * 0.25 - yv * 0.125);
      ry_.set(i, j, yv * 0.25 + xv * 0.125);
      m.exec(kExec * 2);
    }
  }
}

// SOR relaxation: read-modify-write RX and RY in strict alternation, so the
// miss sequence alternates RX-line, RY-line with period 2.
void Tomcatv::relax_pass(sim::Machine& m) {
  for (std::uint64_t i = 0; i < n_; ++i) {
    for (std::uint64_t j = 0; j < n_; ++j) {
      const double rxv = rx_.get(i, j);
      rx_.set(i, j, rxv * 0.9);
      const double ryv = ry_.get(i, j);
      ry_.set(i, j, ryv * 0.9);
      m.exec(kExec * 2);
    }
  }
}

// Tridiagonal coefficients: read RX, RY; write AA, DD.
void Tomcatv::coefficient_pass(sim::Machine& m) {
  for (std::uint64_t i = 0; i < n_; ++i) {
    for (std::uint64_t j = 0; j < n_; ++j) {
      const double rxv = rx_.get(i, j);
      const double ryv = ry_.get(i, j);
      aa_.set(i, j, rxv + ryv);
      dd_.set(i, j, rxv - ryv);
      m.exec(kExec * 2);
    }
  }
}

void Tomcatv::run(sim::Machine& machine) {
  auto rmw2d = [&](Array2D<double>& a, double k) {
    for (std::uint64_t i = 0; i < n_; ++i) {
      for (std::uint64_t j = 0; j < n_; ++j) {
        a.set(i, j, a.get(i, j) * k + 0.01);
        machine.exec(kExec);
      }
    }
  };
  // Per-iteration pass tally (see header): X 4, Y 4, RX 9, RY 9, AA 6,
  // DD 4, D 4 — shares 10/10/22.5/22.5/15/10/10.  The pass kinds are
  // interleaved (as the real kernel's loop nests are) so no array is idle
  // for more than a few passes; this is what lets timer-driven measurement
  // see every array within a sample interval.
  enum Pass : char { R /*residual*/, L /*relax*/, C /*coef*/,
                     A /*AA*/, E /*DD*/, S /*D*/ };
  static constexpr Pass kSchedule[] = {R, A, L, S, R, A, L, E, R, A, S,
                                       C, R, A, L, E, S, A, L, E, S};
  for (std::uint64_t it = 0; it < iterations_; ++it) {
    for (const Pass pass : kSchedule) {
      switch (pass) {
        case R: residual_pass(machine); break;
        case L: relax_pass(machine); break;
        case C: coefficient_pass(machine); break;
        case A: rmw2d(aa_, 0.95); break;
        case E: rmw2d(dd_, 0.97); break;
        case S: rmw2d(d_, 0.99); break;
      }
    }
  }
}

}  // namespace hpm::workloads
