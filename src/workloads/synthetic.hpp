// Parameterizable synthetic workloads for tests and ablation benches.
//
// A SyntheticSpec declares named arrays (static or heap) and a phase
// program; each phase sweeps its arrays a given number of times per
// repetition.  Because sweep counts map directly to miss shares (arrays
// larger than the cache miss every line per sweep), tests can state exact
// expected profiles.  Factories below build the special layouts the paper
// discusses: the Figure 2 priority-queue scenario, a boundary-spanning
// array, phased access, heap churn, and stack-local traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/kernels_common.hpp"
#include "workloads/workload.hpp"

namespace hpm::workloads {

struct SyntheticArray {
  std::string name;
  std::uint64_t bytes = 0;
  bool on_heap = false;
  sim::AllocSite site = sim::kNoSite;
  /// Extra bytes of unused address space before this array (layout control
  /// for region-boundary scenarios).
  std::uint64_t gap_before = 0;
};

struct SyntheticPhase {
  /// sweeps[i] = passes over array i during one repetition of this phase.
  std::vector<std::uint32_t> sweeps;
  std::uint32_t repetitions = 1;
};

struct SyntheticSpec {
  std::string name = "synthetic";
  std::vector<SyntheticArray> arrays;
  std::vector<SyntheticPhase> phases;
  std::uint32_t iterations = 1;      ///< whole phase-program repetitions
  std::uint64_t exec_per_access = 2;
  /// Sweep style.  Sequential (default): arrays are swept one after the
  /// other, `sweeps[i]` full passes each — miss weight = sweeps x lines,
  /// but activity is bursty (an array is idle while the others sweep).
  /// Lockstep: all participating arrays (sweeps[i] > 0) are streamed
  /// line-by-line together — every array is active in every measurement
  /// interval and miss weight = lines, so weights are set via array sizes.
  bool lockstep = false;
};

class SyntheticWorkload final : public Workload {
 public:
  explicit SyntheticWorkload(SyntheticSpec spec);

  [[nodiscard]] std::string_view name() const override { return spec_.name; }
  void setup(sim::Machine& machine) override;
  void run(sim::Machine& machine) override;

  [[nodiscard]] const SyntheticSpec& spec() const noexcept { return spec_; }
  /// Expected long-run miss share of each array, in percent (sweep-count
  /// weighted by line count) — ground truth for the property tests.
  [[nodiscard]] std::vector<double> expected_shares(
      std::uint64_t line_size = 64) const;
  [[nodiscard]] sim::Addr array_base(std::size_t index) const {
    return arrays_.at(index).base();
  }

 private:
  SyntheticSpec spec_;
  std::vector<Array1D<double>> arrays_;
};

// -- Canned scenarios --------------------------------------------------------

/// k equal arrays, equal sweeps: every object the same share.
[[nodiscard]] SyntheticSpec uniform_spec(std::uint32_t arrays,
                                         std::uint64_t bytes_each,
                                         std::uint32_t iterations = 4);

/// One dominant array (~`hot_percent`% of misses) among `arrays` total.
[[nodiscard]] SyntheticSpec hotspot_spec(std::uint32_t arrays,
                                         std::uint64_t bytes_each,
                                         double hot_percent,
                                         std::uint32_t iterations = 4);

/// The Figure 2 layout: one half of the address range holds several
/// mid-weight arrays summing to ~60% of misses; the other half holds a
/// single array E with more misses than any individual array (~35%).  A
/// greedy search descends into the 60% half and terminates on the wrong
/// array; the priority queue backtracks and finds E.
[[nodiscard]] SyntheticSpec figure2_spec(std::uint64_t bytes_each,
                                         std::uint32_t iterations = 6);

/// Phased access: arrays alternate between hot and completely idle, like
/// applu's Figure 5 pattern.
[[nodiscard]] SyntheticSpec phased_spec(std::uint64_t bytes_each,
                                        std::uint32_t iterations = 6);

/// The spec behind the factory name "synthetic" (make_workload): three
/// arrays in a fixed 4:2:1 miss-share ratio, sized by options.scale (at
/// 1.0 the largest array is 2 MB, matching bench scale against the paper
/// machine) and repeated options.iterations times (0 = default).
[[nodiscard]] SyntheticSpec default_synthetic_spec(
    const WorkloadOptions& options);

}  // namespace hpm::workloads
