// Workload framework: the "applications" the measurement techniques run on.
//
// Each workload is a scaled-down, from-scratch reimplementation of one of
// the paper's SPEC95 benchmarks (or a parameterizable synthetic).  It
// declares named program objects through the simulated address space —
// which feeds the ObjectMap exactly the way symbol tables and instrumented
// malloc feed the paper's tool — and then runs a real computation whose
// per-object cache-miss profile matches the shape of the paper's "Actual"
// columns.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/machine.hpp"

namespace hpm::workloads {

struct WorkloadOptions {
  /// Linear size factor; 1.0 is bench scale (arrays larger than the 2 MB
  /// cache), smaller values are for tests (use with a smaller cache).
  double scale = 1.0;
  /// Outer iterations; 0 picks the workload's default.
  std::uint64_t iterations = 0;
  std::uint64_t seed = 0x5ca1ab1e;
};

class Workload {
 public:
  virtual ~Workload() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Define globals / allocate initial heap blocks.  Call exactly once,
  /// after the ObjectMap has been attached to the machine's address space.
  virtual void setup(sim::Machine& machine) = 0;
  /// Run the kernel to completion.  The instruction stream is a
  /// deterministic function of the options, independent of any installed
  /// measurement tool.
  virtual void run(sim::Machine& machine) = 0;
};

/// Factory for the seven paper workloads: "tomcatv", "swim", "su2cor",
/// "mgrid", "applu", "compress", "ijpeg" — plus "synthetic", the canonical
/// 4:2:1 three-array kernel (see default_synthetic_spec), and the
/// multi-core sharing kernels "false_sharing", "true_sharing" and
/// "producer_consumer" (see sharing.hpp).  Throws std::invalid_argument
/// for unknown names.
[[nodiscard]] std::unique_ptr<Workload> make_workload(
    std::string_view name, const WorkloadOptions& options = {});

/// Names of all paper workloads, in the paper's table order.
[[nodiscard]] const std::vector<std::string>& paper_workload_names();

/// True when make_workload accepts `name` (paper workloads + "synthetic").
/// Lets front-ends validate before constructing anything.
[[nodiscard]] bool is_workload_name(std::string_view name) noexcept;

}  // namespace hpm::workloads
