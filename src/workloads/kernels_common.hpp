// Shared helpers for the SPEC95-like kernels.
//
// The kernels are structured as sequences of "passes" over large arrays —
// the access-pattern skeleton of the originals.  A pass touches every
// element of each participating array once, so with arrays larger than the
// cache each pass contributes size/line_size misses per array; choosing
// per-array pass counts is how a kernel's per-object miss profile is made
// to match the paper's "Actual" columns (see DESIGN.md).
#pragma once

#include <cstdint>

#include "sim/machine.hpp"
#include "workloads/sim_array.hpp"

namespace hpm::workloads {

/// One pass of y[i] = f(x[i]) with `exec` compute instructions per element.
inline void map_pass(sim::Machine& m, const Array1D<double>& x,
                     const Array1D<double>& y, std::uint64_t exec) {
  const std::uint64_t n = x.size();
  for (std::uint64_t i = 0; i < n; ++i) {
    const double v = x.get(i);
    y.set(i, v * 0.98 + 0.5);
    m.exec(exec);
  }
}

/// One read-modify-write smoothing pass over `a` (touches each line once).
inline void rmw_pass(sim::Machine& m, const Array1D<double>& a,
                     std::uint64_t exec) {
  const std::uint64_t n = a.size();
  for (std::uint64_t i = 0; i < n; ++i) {
    const double v = a.get(i);
    a.set(i, v * 0.5 + 1.0);
    m.exec(exec);
  }
}

/// One read-only reduction pass.
inline double reduce_pass(sim::Machine& m, const Array1D<double>& a,
                          std::uint64_t exec) {
  double sum = 0.0;
  const std::uint64_t n = a.size();
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += a.get(i);
    m.exec(exec);
  }
  return sum;
}

/// One initialisation pass.
inline void fill_pass(sim::Machine& m, const Array1D<double>& a, double v0,
                      double dv, std::uint64_t exec) {
  const std::uint64_t n = a.size();
  for (std::uint64_t i = 0; i < n; ++i) {
    a.set(i, v0 + dv * static_cast<double>(i));
    m.exec(exec);
  }
}

/// Pseudo-random rotation for multi-array touch order, derived by hashing
/// the cache-line index.  Unlike `line % group`, this has no period, so a
/// fixed sampling stride can never phase-lock onto one array of the group
/// (only tomcatv is supposed to alias with the sampling interval).
[[nodiscard]] constexpr std::uint32_t line_rotation(std::uint64_t line,
                                                    std::uint32_t group) {
  std::uint64_t z = line + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::uint32_t>((z >> 33) % group);
}

/// Elements per array for a target byte size (doubles).
[[nodiscard]] constexpr std::uint64_t elems_for_bytes(
    std::uint64_t bytes) noexcept {
  return bytes / sizeof(double);
}

/// Scale a dimension, keeping a sane floor so tiny test scales still work.
[[nodiscard]] inline std::uint64_t scaled(std::uint64_t n, double scale,
                                          std::uint64_t floor = 64) {
  const auto s = static_cast<std::uint64_t>(static_cast<double>(n) * scale);
  return s < floor ? floor : s;
}

}  // namespace hpm::workloads
