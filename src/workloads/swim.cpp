#include "workloads/swim.hpp"

namespace hpm::workloads {

namespace {
// 520 (not 512): 2.16 MB per array.  A power-of-two array size equal to the
// cache size would put all thirteen arrays' corresponding rows in the same
// cache sets (lockstep streaming would thrash individual sets), skewing the
// per-array profile away from the paper's uniform 7.7%.
constexpr std::uint64_t kBaseN = 520;
constexpr std::uint64_t kDefaultIterations = 4;
constexpr std::uint64_t kExec = 3;
}  // namespace

Swim::Swim(const WorkloadOptions& options)
    : n_(scaled(kBaseN, options.scale)),
      iterations_(options.iterations ? options.iterations
                                     : kDefaultIterations) {}

void Swim::setup(sim::Machine& machine) {
  u_ = Array2D<double>::make_static(machine, "U", n_, n_);
  v_ = Array2D<double>::make_static(machine, "V", n_, n_);
  p_ = Array2D<double>::make_static(machine, "P", n_, n_);
  unew_ = Array2D<double>::make_static(machine, "UNEW", n_, n_);
  vnew_ = Array2D<double>::make_static(machine, "VNEW", n_, n_);
  pnew_ = Array2D<double>::make_static(machine, "PNEW", n_, n_);
  uold_ = Array2D<double>::make_static(machine, "UOLD", n_, n_);
  vold_ = Array2D<double>::make_static(machine, "VOLD", n_, n_);
  pold_ = Array2D<double>::make_static(machine, "POLD", n_, n_);
  cu_ = Array2D<double>::make_static(machine, "CU", n_, n_);
  cv_ = Array2D<double>::make_static(machine, "CV", n_, n_);
  z_ = Array2D<double>::make_static(machine, "Z", n_, n_);
  h_ = Array2D<double>::make_static(machine, "H", n_, n_);
}

namespace {

// Load a group of arrays at (i, j) in an order that rotates per cache line,
// so multi-array nests do not produce a phase-locked miss interleave (see
// applu.cpp; in the paper only tomcatv aliases with the sampling period).
// Values land in `out` indexed by array position, independent of the touch
// order.
template <std::size_t G>
void rotated_get(const Array2D<double>* const (&arrays)[G], std::uint64_t i,
                 std::uint64_t j, double (&out)[G]) {
  const std::size_t rot = line_rotation((i << 16) | (j >> 3), G);
  for (std::size_t k = 0; k < G; ++k) {
    const std::size_t id = (rot + k) % G;
    out[id] = arrays[id]->get(i, j);
  }
}

template <std::size_t G>
void rotated_set(const Array2D<double>* const (&arrays)[G], std::uint64_t i,
                 std::uint64_t j, const double (&values)[G]) {
  const std::size_t rot = line_rotation((i << 16) | (j >> 3), G);
  for (std::size_t k = 0; k < G; ++k) {
    const std::size_t id = (rot + k) % G;
    arrays[id]->set(i, j, values[id]);
  }
}

}  // namespace

void Swim::run(sim::Machine& machine) {
  const std::uint64_t n = n_;
  // Touch tally per timestep (passes below): every one of the 13 arrays is
  // touched exactly 3 times -> uniform 7.7% miss shares, as in Table 1.
  for (std::uint64_t it = 0; it < iterations_; ++it) {
    // CALC1: fluxes and height from the current fields.
    // reads U,V,P (1); writes CU,CV,Z,H (1)
    {
      const Array2D<double>* in[3] = {&u_, &v_, &p_};
      const Array2D<double>* out[4] = {&cu_, &cv_, &z_, &h_};
      for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
          double f[3];
          rotated_get(in, i, j, f);
          const double uv = f[0];
          const double vv = f[1];
          const double pv = f[2];
          const double res[4] = {0.5 * (pv + uv) * uv, 0.5 * (pv + vv) * vv,
                                 (vv - uv) / (pv + 1.0),
                                 pv + 0.25 * (uv * uv + vv * vv)};
          rotated_set(out, i, j, res);
          machine.exec(kExec * 4);
        }
      }
    }
    // CALC2: new fields from fluxes and old fields.
    // reads CU,CV,Z,H (2), UOLD,VOLD,POLD (1); writes UNEW,VNEW,PNEW (1)
    {
      const Array2D<double>* in[7] = {&cu_, &cv_, &z_, &h_,
                                      &uold_, &vold_, &pold_};
      const Array2D<double>* out[3] = {&unew_, &vnew_, &pnew_};
      for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
          double f[7];
          rotated_get(in, i, j, f);
          const double res[3] = {f[4] + f[2] * f[1] - f[3] * 1e-3,
                                 f[5] - f[2] * f[0] - f[3] * 1e-3,
                                 f[6] - f[0] - f[1]};
          rotated_set(out, i, j, res);
          machine.exec(kExec * 5);
        }
      }
    }
    // CALC3 part A: time shift — reads U,V,P (2); writes UOLD,VOLD,POLD (2).
    {
      const Array2D<double>* in[3] = {&u_, &v_, &p_};
      const Array2D<double>* out[3] = {&uold_, &vold_, &pold_};
      for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
          double f[3];
          rotated_get(in, i, j, f);
          rotated_set(out, i, j, f);
          machine.exec(kExec * 2);
        }
      }
    }
    // CALC3 part B: adopt new fields — reads UNEW,VNEW,PNEW (2);
    // writes U,V,P (3).
    {
      const Array2D<double>* in[3] = {&unew_, &vnew_, &pnew_};
      const Array2D<double>* out[3] = {&u_, &v_, &p_};
      for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
          double f[3];
          rotated_get(in, i, j, f);
          rotated_set(out, i, j, f);
          machine.exec(kExec * 2);
        }
      }
    }
    // Flux smoothing: RMW CU,CV,Z,H (3).
    {
      const Array2D<double>* arrs[4] = {&cu_, &cv_, &z_, &h_};
      for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
          const std::size_t rot = line_rotation((i << 16) | (j >> 3), 4);
          for (std::size_t k = 0; k < 4; ++k) {
            const std::size_t id = (rot + k) % 4;
            arrs[id]->set(i, j, arrs[id]->get(i, j) * 0.99);
          }
          machine.exec(kExec * 4);
        }
      }
    }
    // Time filter: reads UNEW,VNEW,PNEW (3); RMW UOLD,VOLD,POLD (3).
    {
      const Array2D<double>* in[3] = {&unew_, &vnew_, &pnew_};
      const Array2D<double>* acc[3] = {&uold_, &vold_, &pold_};
      for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
          double f[3];
          rotated_get(in, i, j, f);
          const std::size_t rot = line_rotation((i << 16) | (j >> 3), 3);
          for (std::size_t k = 0; k < 3; ++k) {
            const std::size_t id = (rot + k) % 3;
            acc[id]->set(i, j, acc[id]->get(i, j) * 0.5 + f[id] * 0.5);
          }
          machine.exec(kExec * 3);
        }
      }
    }
  }
}

}  // namespace hpm::workloads
