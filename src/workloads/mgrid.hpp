// mgrid-like multigrid V-cycle kernel (SPEC95 107.mgrid).
//
// Paper profile: U 40.8%, R 40.4%, V 18.8% — U and R swept equally often,
// V roughly half as often.  Coarse-grid arrays fit in the cache after their
// first touch and so contribute (realistically) almost nothing, which is
// why the paper's table shows only three objects.
#pragma once

#include "workloads/kernels_common.hpp"
#include "workloads/workload.hpp"

namespace hpm::workloads {

class Mgrid final : public Workload {
 public:
  explicit Mgrid(const WorkloadOptions& options = {});

  [[nodiscard]] std::string_view name() const override { return "mgrid"; }
  void setup(sim::Machine& machine) override;
  void run(sim::Machine& machine) override;

 private:
  double scale_;
  std::uint64_t iterations_;
  Array1D<double> u_, r_, v_;        // fine grid
  Array1D<double> u2_, r2_, u3_;     // coarse grids (cache-resident)
};

}  // namespace hpm::workloads
