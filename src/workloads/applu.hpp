// applu-like SSOR kernel (SPEC95 110.applu).
//
// Jacobian blocks a, b, c, d plus the residual rsd and solution u.  Paper
// profile: a 22.9%, b 22.9%, c 22.6%, d 17.4%, rsd 6.9% (u takes the rest).
// The kernel has two alternating phases per timestep — the Jacobian/SSOR
// phase (a-d hot, rsd once) and the right-hand-side phase (rsd/u hot, a-d
// completely idle).  During the RHS phase a, b and c incur *zero* misses
// for a stretch of cycles: this is exactly the Figure 5 behaviour that the
// search's zero-retention/interval-growth heuristic (§3.5) exists for.
#pragma once

#include "workloads/kernels_common.hpp"
#include "workloads/workload.hpp"

namespace hpm::workloads {

class Applu final : public Workload {
 public:
  explicit Applu(const WorkloadOptions& options = {});

  [[nodiscard]] std::string_view name() const override { return "applu"; }
  void setup(sim::Machine& machine) override;
  void run(sim::Machine& machine) override;

 private:
  double scale_;
  std::uint64_t iterations_;
  Array1D<double> a_, b_, c_, d_, rsd_, u_;
};

}  // namespace hpm::workloads
