// tomcatv-like mesh generation kernel (SPEC95 101.tomcatv).
//
// Seven N x N double arrays with the original's names.  Per outer iteration
// the pass structure gives the miss-share profile of the paper's Table 1:
//   RX 22.5%, RY 22.5%, AA 15%, DD 10%, X 10%, Y 10%, D 10%.
//
// The relaxation passes interleave RX and RY misses in strict alternation,
// which is what makes an *even* sampling period alias catastrophically
// (every sample lands on the same array) while a prime period samples both
// fairly — the §3.1 phenomenon.
#pragma once

#include "workloads/kernels_common.hpp"
#include "workloads/workload.hpp"

namespace hpm::workloads {

class Tomcatv final : public Workload {
 public:
  explicit Tomcatv(const WorkloadOptions& options = {});

  [[nodiscard]] std::string_view name() const override { return "tomcatv"; }
  void setup(sim::Machine& machine) override;
  void run(sim::Machine& machine) override;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t iterations() const noexcept {
    return iterations_;
  }

 private:
  void residual_pass(sim::Machine& m);
  void relax_pass(sim::Machine& m);
  void coefficient_pass(sim::Machine& m);

  std::uint64_t n_;
  std::uint64_t iterations_;
  Array2D<double> x_, y_, rx_, ry_, aa_, dd_, d_;
};

}  // namespace hpm::workloads
