// Typed array views over simulated memory.
//
// Workload kernels compute on real data that lives in the simulated address
// space; every element access is a genuine simulated memory reference (cache
// access, cycle charge, PMU update).  `exec_per_access` models the
// surrounding arithmetic: the paper's simulator counted basic-block cycles,
// and the ratio of compute instructions to memory references is what sets
// each application's misses-per-million-cycles rate (§3.2 relies on ijpeg
// having a far lower miss rate than the HPC kernels).
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/machine.hpp"
#include "sim/types.hpp"

namespace hpm::workloads {

template <typename T>
class Array1D {
 public:
  Array1D() = default;
  Array1D(sim::Machine& machine, sim::Addr base, std::uint64_t count)
      : machine_(&machine), base_(base), count_(count) {}

  /// Define a named global array and return a view of it.
  static Array1D make_static(sim::Machine& machine, std::string_view name,
                             std::uint64_t count) {
    const sim::Addr base =
        machine.address_space().define_static(name, count * sizeof(T));
    return Array1D(machine, base, count);
  }

  /// Allocate a heap array (simulated malloc) and return a view of it.
  static Array1D make_heap(sim::Machine& machine, std::uint64_t count,
                           sim::AllocSite site = sim::kNoSite) {
    const sim::Addr base =
        machine.address_space().malloc(count * sizeof(T), site);
    return Array1D(machine, base, count);
  }

  [[nodiscard]] T get(std::uint64_t i) const {
    return machine_->load<T>(base_ + i * sizeof(T));
  }
  // A view is freely copyable and does not own the data, so writing through
  // a const view is fine (like std::span).
  void set(std::uint64_t i, const T& v) const {
    machine_->store(base_ + i * sizeof(T), v);
  }
  [[nodiscard]] std::uint64_t size() const noexcept { return count_; }
  [[nodiscard]] sim::Addr base() const noexcept { return base_; }
  [[nodiscard]] sim::Addr addr_of(std::uint64_t i) const noexcept {
    return base_ + i * sizeof(T);
  }
  [[nodiscard]] bool valid() const noexcept {
    return machine_ != nullptr && base_ != sim::kNullAddr;
  }

 private:
  sim::Machine* machine_ = nullptr;
  sim::Addr base_ = sim::kNullAddr;
  std::uint64_t count_ = 0;
};

template <typename T>
class Array2D {
 public:
  Array2D() = default;
  Array2D(sim::Machine& machine, sim::Addr base, std::uint64_t rows,
          std::uint64_t cols)
      : machine_(&machine), base_(base), rows_(rows), cols_(cols) {}

  static Array2D make_static(sim::Machine& machine, std::string_view name,
                             std::uint64_t rows, std::uint64_t cols) {
    const sim::Addr base =
        machine.address_space().define_static(name, rows * cols * sizeof(T));
    return Array2D(machine, base, rows, cols);
  }

  [[nodiscard]] T get(std::uint64_t r, std::uint64_t c) const {
    return machine_->load<T>(addr_of(r, c));
  }
  // Const for the same reason as Array1D::set: a non-owning view.
  void set(std::uint64_t r, std::uint64_t c, const T& v) const {
    machine_->store(addr_of(r, c), v);
  }
  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint64_t cols() const noexcept { return cols_; }
  [[nodiscard]] sim::Addr base() const noexcept { return base_; }
  [[nodiscard]] sim::Addr addr_of(std::uint64_t r,
                                  std::uint64_t c) const noexcept {
    return base_ + (r * cols_ + c) * sizeof(T);
  }

 private:
  sim::Machine* machine_ = nullptr;
  sim::Addr base_ = sim::kNullAddr;
  std::uint64_t rows_ = 0;
  std::uint64_t cols_ = 0;
};

}  // namespace hpm::workloads
