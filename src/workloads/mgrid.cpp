#include "workloads/mgrid.hpp"

namespace hpm::workloads {

namespace {
constexpr std::uint64_t kFine = 384 * 1024;   // 3 MB per fine-grid array
constexpr std::uint64_t kCoarse = 48 * 1024;  // 384 KB
constexpr std::uint64_t kCoarser = 6 * 1024;  // 48 KB
constexpr std::uint64_t kDefaultIterations = 3;
constexpr std::uint64_t kExec = 2;  // HPC kernel: little compute per access
}  // namespace

Mgrid::Mgrid(const WorkloadOptions& options)
    : scale_(options.scale),
      iterations_(options.iterations ? options.iterations
                                     : kDefaultIterations) {}

void Mgrid::setup(sim::Machine& machine) {
  const double a = scale_ * scale_;
  u_ = Array1D<double>::make_static(machine, "U", scaled(kFine, a, 512));
  r_ = Array1D<double>::make_static(machine, "R", scaled(kFine, a, 512));
  v_ = Array1D<double>::make_static(machine, "V", scaled(kFine, a, 512));
  u2_ = Array1D<double>::make_static(machine, "U2", scaled(kCoarse, a, 128));
  r2_ = Array1D<double>::make_static(machine, "R2", scaled(kCoarse, a, 128));
  u3_ = Array1D<double>::make_static(machine, "U3", scaled(kCoarser, a, 64));
}

void Mgrid::run(sim::Machine& machine) {
  // Fine-grid touch counts per V-cycle: U 13, R 13, V 6 ->
  // 40.6% / 40.6% / 18.75%, the paper's 40.8 / 40.4 / 18.8 shape.
  for (std::uint64_t it = 0; it < iterations_; ++it) {
    // resid: r = v - A*u  (reads U, V; writes R) x2
    for (int k = 0; k < 2; ++k) {
      const std::uint64_t n = u_.size();
      for (std::uint64_t i = 0; i < n; ++i) {
        r_.set(i, v_.get(i) - 0.5 * u_.get(i));
        machine.exec(kExec * 2);
      }
    }
    // psinv: u += M*r  (RMW U, reads R) x4
    for (int k = 0; k < 4; ++k) {
      const std::uint64_t n = u_.size();
      for (std::uint64_t i = 0; i < n; ++i) {
        u_.set(i, u_.get(i) + 0.25 * r_.get(i));
        machine.exec(kExec * 2);
      }
    }
    // rprj3: restrict R to the coarse grid (reads R; writes R2) x3
    for (int k = 0; k < 3; ++k) {
      const std::uint64_t n2 = r2_.size();
      const std::uint64_t stride = r_.size() / n2;
      // The coarse write is dense but tiny; the fine read is a strided
      // gather that still touches every R line.
      for (std::uint64_t i = 0; i < n2; ++i) {
        double acc = 0.0;
        for (std::uint64_t s = 0; s < stride; ++s) {
          acc += r_.get(i * stride + s);
          machine.exec(kExec);
        }
        r2_.set(i, acc / static_cast<double>(stride));
      }
    }
    // Coarse-grid relaxation: cache-resident after first touch.
    for (int k = 0; k < 6; ++k) {
      const std::uint64_t n2 = u2_.size();
      for (std::uint64_t i = 0; i < n2; ++i) {
        u2_.set(i, u2_.get(i) * 0.5 + r2_.get(i) * 0.5);
        machine.exec(kExec * 2);
      }
      const std::uint64_t n3 = u3_.size();
      for (std::uint64_t i = 0; i < n3; ++i) {
        u3_.set(i, u3_.get(i) * 0.9 + 0.1);
        machine.exec(kExec);
      }
    }
    // interp: prolongate U2 back and correct U (RMW U, reads U2) x1
    // (fine-grid touch tally per V-cycle: U 13, R 13, V 6)
    for (int k = 0; k < 1; ++k) {
      const std::uint64_t n = u_.size();
      const std::uint64_t n2 = u2_.size();
      for (std::uint64_t i = 0; i < n; ++i) {
        u_.set(i, u_.get(i) + 0.1 * u2_.get(i % n2));
        machine.exec(kExec * 2);
      }
    }
    // Second resid + psinv leg of the V-cycle:
    // resid x2 (U+2=13? see tally below), psinv x3.
    for (int k = 0; k < 2; ++k) {
      const std::uint64_t n = u_.size();
      for (std::uint64_t i = 0; i < n; ++i) {
        r_.set(i, v_.get(i) - 0.5 * u_.get(i));
        machine.exec(kExec * 2);
      }
    }
    for (int k = 0; k < 2; ++k) {
      const std::uint64_t n = u_.size();
      for (std::uint64_t i = 0; i < n; ++i) {
        u_.set(i, u_.get(i) + 0.25 * r_.get(i));
        machine.exec(kExec * 2);
      }
    }
    // norm2u3: reduction over U and V x2 (V tally 6).
    for (int k = 0; k < 2; ++k) {
      (void)reduce_pass(machine, u_, kExec);
      (void)reduce_pass(machine, v_, kExec);
    }
  }
}

}  // namespace hpm::workloads
