#include "workloads/applu.hpp"

namespace hpm::workloads {

namespace {
constexpr std::uint64_t kElems = 320 * 1024;  // 2.5 MB per array
constexpr std::uint64_t kDefaultIterations = 6;
constexpr std::uint64_t kExec = 2;
// Extra compute per element in the RHS phase stretches the a-d idle window
// across multiple measurement intervals.
constexpr std::uint64_t kRhsExec = 10;
}  // namespace

Applu::Applu(const WorkloadOptions& options)
    : scale_(options.scale),
      iterations_(options.iterations ? options.iterations
                                     : kDefaultIterations) {}

void Applu::setup(sim::Machine& machine) {
  const double s = scale_ * scale_;
  a_ = Array1D<double>::make_static(machine, "a", scaled(kElems, s, 512));
  b_ = Array1D<double>::make_static(machine, "b", scaled(kElems, s, 512));
  c_ = Array1D<double>::make_static(machine, "c", scaled(kElems, s, 512));
  d_ = Array1D<double>::make_static(machine, "d", scaled(kElems, s, 512));
  rsd_ = Array1D<double>::make_static(machine, "rsd", scaled(kElems, s, 512));
  u_ = Array1D<double>::make_static(machine, "u", scaled(kElems, s, 512));
}

void Applu::run(sim::Machine& machine) {
  const std::uint64_t n = a_.size();
  // Touch tally per timestep: a 4, b 4, c 4, d 3, rsd 1, u 1 ->
  // 23.5 / 23.5 / 23.5 / 17.6 / 5.9 / 5.9 (paper: 22.9/22.9/22.6/17.4/6.9).
  // The Jacobian blocks are touched in an order that rotates per cache
  // line.  Real applu writes 5x5 blocks per grid point, so its miss
  // interleave is not phase-locked; without the rotation, a fixed even
  // sampling period would land on the same array every time (the aliasing
  // that in the paper is specific to tomcatv).
  const Array1D<double>* blocks[4] = {&a_, &b_, &c_, &d_};
  for (std::uint64_t it = 0; it < iterations_; ++it) {
    // -- Phase 1: jacld/blts — form Jacobians and lower-triangular solve.
    // Pass 1: build a,b,c,d from rsd-independent data.
    for (std::uint64_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i % 97) * 0.01;
      const std::uint64_t rot = line_rotation(i >> 3, 4);
      for (std::uint64_t k = 0; k < 4; ++k) {
        const std::uint64_t id = (rot + k) & 3;
        blocks[id]->set(i, x + static_cast<double>(id) + 1.0);
      }
      machine.exec(kExec * 4);
    }
    // Passes 2-4: SSOR sweeps RMW a,b,c (and d on two of them).
    for (int k = 0; k < 3; ++k) {
      const std::uint64_t group = k < 2 ? 4 : 3;  // abc, +d on two passes
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t rot = line_rotation(i >> 3, static_cast<std::uint32_t>(group));
        for (std::uint64_t j = 0; j < group; ++j) {
          const std::uint64_t id = (rot + j) % group;
          blocks[id]->set(i, blocks[id]->get(i) * 0.9 + 0.01);
        }
        machine.exec(kExec * 4);
      }
    }
    // -- Phase 2: rhs — a,b,c,d untouched; rsd and u stream with heavy
    //    per-element compute (the Figure 5 "dip to zero" window).
    for (std::uint64_t i = 0; i < n; ++i) {
      u_.set(i, u_.get(i) + 0.1 * rsd_.get(i));
      machine.exec(kRhsExec * 2);
    }
  }
}

}  // namespace hpm::workloads
