#include "workloads/sharing.hpp"

namespace hpm::workloads {

namespace {

constexpr std::uint64_t kDoublesPerLine = 8;
/// Contended / streamed references per core per slice.  Small enough that
/// cores interleave at fine grain (every slice boundary is a potential
/// line ping-pong), large enough that slice-scheduling overhead is noise.
constexpr std::uint64_t kInnerPerSlice = 16;
constexpr std::uint64_t kDefaultSlices = 2000;

std::uint64_t slices_from(const WorkloadOptions& options) {
  return options.iterations != 0 ? options.iterations : kDefaultSlices;
}

}  // namespace

void ThreadedWorkload::run(sim::Machine& machine) {
  const unsigned cores = machine.num_cores();
  const std::uint64_t slices = num_slices(machine);
  for (std::uint64_t s = 0; s < slices; ++s) {
    for (unsigned c = 0; c < cores; ++c) {
      machine.set_active_core(c);
      run_slice(machine, c, s);
    }
  }
  machine.set_active_core(0);
}

// -- false_sharing ------------------------------------------------------------

FalseSharing::FalseSharing(const WorkloadOptions& options)
    : slices_(slices_from(options)),
      lane_elems_(elems_for_bytes(scaled(256 * 1024, options.scale, 4096))) {}

void FalseSharing::setup(sim::Machine& machine) {
  // One 8-byte counter per core, deliberately packed: eight counters per
  // 64-byte line.  A 64-entry table supports the machine's core limit.
  shared_ = Array1D<double>::make_static(machine, "SHARED_SLOTS", 64);
  lanes_ = Array1D<double>::make_static(
      machine, "PRIVATE_LANES", lane_elems_ * machine.num_cores());
}

std::uint64_t FalseSharing::num_slices(const sim::Machine&) const {
  return slices_;
}

void FalseSharing::run_slice(sim::Machine& machine, unsigned core,
                             std::uint64_t slice) {
  const std::uint64_t slot = core % shared_.size();
  const std::uint64_t lane0 =
      static_cast<std::uint64_t>(core) * lane_elems_;
  const std::uint64_t lane_lines = lane_elems_ / kDoublesPerLine;
  for (std::uint64_t i = 0; i < kInnerPerSlice; ++i) {
    // The core's own counter — private data on a shared line.
    shared_.set(slot, shared_.get(slot) + 1.0);
    // Core-private streaming: one fresh line per touch, never coherent.
    const std::uint64_t line = (slice * kInnerPerSlice + i) % lane_lines;
    const std::uint64_t e = lane0 + line * kDoublesPerLine;
    lanes_.set(e, lanes_.get(e) * 0.5 + 1.0);
    machine.exec(2);
  }
}

// -- true_sharing -------------------------------------------------------------

TrueSharing::TrueSharing(const WorkloadOptions& options)
    : slices_(slices_from(options)),
      table_elems_(elems_for_bytes(scaled(64 * 1024, options.scale, 4096))),
      lane_elems_(elems_for_bytes(scaled(128 * 1024, options.scale, 4096))) {}

void TrueSharing::setup(sim::Machine& machine) {
  counter_ = Array1D<double>::make_static(machine, "HOT_COUNTER",
                                          kDoublesPerLine);
  table_ = Array1D<double>::make_static(machine, "SHARED_TABLE",
                                        table_elems_);
  lanes_ = Array1D<double>::make_static(
      machine, "PRIVATE_LANES", lane_elems_ * machine.num_cores());
}

std::uint64_t TrueSharing::num_slices(const sim::Machine&) const {
  return slices_;
}

void TrueSharing::run_slice(sim::Machine& machine, unsigned core,
                            std::uint64_t slice) {
  const std::uint64_t lane0 =
      static_cast<std::uint64_t>(core) * lane_elems_;
  const std::uint64_t lane_lines = lane_elems_ / kDoublesPerLine;
  const std::uint64_t table_lines = table_elems_ / kDoublesPerLine;
  for (std::uint64_t i = 0; i < kInnerPerSlice; ++i) {
    // The genuinely shared reduction variable: every core's write
    // invalidates every other core's copy.
    counter_.set(0, counter_.get(0) + 1.0);
    // Read-mostly shared table: consecutive cores pull the same line into
    // their private caches (sharing transitions, no invalidations).
    const std::uint64_t t =
        ((slice * kInnerPerSlice + i) % table_lines) * kDoublesPerLine;
    const double v = table_.get(t);
    // Private streaming lane.
    const std::uint64_t line = (slice * kInnerPerSlice + i) % lane_lines;
    const std::uint64_t e = lane0 + line * kDoublesPerLine;
    lanes_.set(e, lanes_.get(e) * 0.25 + v * 0.0625);
    machine.exec(2);
  }
}

// -- producer_consumer --------------------------------------------------------

ProducerConsumer::ProducerConsumer(const WorkloadOptions& options)
    : slices_(slices_from(options)),
      buffer_elems_(
          elems_for_bytes(scaled(256 * 1024, options.scale, 4096))),
      lane_elems_(elems_for_bytes(scaled(128 * 1024, options.scale, 4096))) {}

void ProducerConsumer::setup(sim::Machine& machine) {
  buffer_ = Array1D<double>::make_static(machine, "RING_BUFFER",
                                         buffer_elems_);
  lanes_ = Array1D<double>::make_static(
      machine, "PRIVATE_LANES", lane_elems_ * machine.num_cores());
}

std::uint64_t ProducerConsumer::num_slices(const sim::Machine&) const {
  return slices_;
}

void ProducerConsumer::run_slice(sim::Machine& machine, unsigned core,
                                 std::uint64_t slice) {
  const std::uint64_t buffer_lines = buffer_elems_ / kDoublesPerLine;
  const std::uint64_t window =
      kInnerPerSlice < buffer_lines ? kInnerPerSlice : buffer_lines;
  const std::uint64_t w0 = (slice * window) % buffer_lines;
  const std::uint64_t lane0 =
      static_cast<std::uint64_t>(core) * lane_elems_;
  const std::uint64_t lane_lines = lane_elems_ / kDoublesPerLine;
  double sum = 0.0;
  for (std::uint64_t i = 0; i < window; ++i) {
    const std::uint64_t e =
        ((w0 + i) % buffer_lines) * kDoublesPerLine;
    if (core == 0) {
      // Produce: dirty the window (Modified in core 0's private cache).
      buffer_.set(e, static_cast<double>(slice + i));
    } else {
      // Consume: the read snoops core 0's dirty copy out (forced
      // writeback) and adds this core as a sharer.
      sum += buffer_.get(e);
    }
    const std::uint64_t line = (slice * window + i) % lane_lines;
    const std::uint64_t le = lane0 + line * kDoublesPerLine;
    lanes_.set(le, lanes_.get(le) * 0.5 + sum * 1e-9);
    machine.exec(2);
  }
}

const std::vector<std::string>& sharing_workload_names() {
  static const std::vector<std::string> names = {
      "false_sharing", "true_sharing", "producer_consumer"};
  return names;
}

}  // namespace hpm::workloads
