// compress-like LZW codec (SPEC95 129.compress).
//
// A real LZW compressor/decompressor operating on simulated memory, with
// the original's object names: orig_text_buffer, comp_text_buffer, htab,
// codetab.  The miss profile emerges rather than being scripted: streaming
// the big text buffers misses every line, while the ~0.5 MB hash tables
// stay cache-resident and contribute the paper's ~1.3%/0.2% tail.  The
// round-trip (compress then decompress, like the SPEC harness) yields the
// paper's ~63/36 orig/comp split.
#pragma once

#include "workloads/kernels_common.hpp"
#include "workloads/workload.hpp"

namespace hpm::workloads {

class Compress final : public Workload {
 public:
  explicit Compress(const WorkloadOptions& options = {});

  [[nodiscard]] std::string_view name() const override { return "compress"; }
  void setup(sim::Machine& machine) override;
  void run(sim::Machine& machine) override;

  /// Compressed size of the last compress pass (bytes); 0 before run().
  [[nodiscard]] std::uint64_t compressed_bytes() const noexcept {
    return compressed_bytes_;
  }
  /// True if the last decompression round-trip reproduced the input.
  [[nodiscard]] bool roundtrip_ok() const noexcept { return roundtrip_ok_; }
  [[nodiscard]] std::uint64_t input_bytes() const noexcept {
    return input_bytes_;
  }

 private:
  void generate_input(sim::Machine& m);
  [[nodiscard]] std::uint64_t lzw_compress(sim::Machine& m);
  void lzw_decompress(sim::Machine& m, std::uint64_t comp_len);

  std::uint64_t input_bytes_;
  std::uint64_t rounds_;
  std::uint64_t seed_;
  std::uint64_t compressed_bytes_ = 0;
  std::uint64_t input_checksum_ = 0;
  bool roundtrip_ok_ = false;

  sim::Addr orig_ = 0;
  sim::Addr comp_ = 0;
  sim::Addr htab_ = 0;      // int64 per slot: (fcode<<16)|code, -1 = empty
  sim::Addr codetab_ = 0;   // kept for structural fidelity (paper object)
  sim::Addr tab_prefix_ = 0;
  sim::Addr tab_suffix_ = 0;
};

}  // namespace hpm::workloads
