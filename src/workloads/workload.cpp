#include "workloads/workload.hpp"

#include <stdexcept>

#include "workloads/applu.hpp"
#include "workloads/compress.hpp"
#include "workloads/ijpeg.hpp"
#include "workloads/mgrid.hpp"
#include "workloads/sharing.hpp"
#include "workloads/su2cor.hpp"
#include "workloads/swim.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tomcatv.hpp"

namespace hpm::workloads {

std::unique_ptr<Workload> make_workload(std::string_view name,
                                        const WorkloadOptions& options) {
  if (name == "tomcatv") return std::make_unique<Tomcatv>(options);
  if (name == "swim") return std::make_unique<Swim>(options);
  if (name == "su2cor") return std::make_unique<Su2cor>(options);
  if (name == "mgrid") return std::make_unique<Mgrid>(options);
  if (name == "applu") return std::make_unique<Applu>(options);
  if (name == "compress") return std::make_unique<Compress>(options);
  if (name == "ijpeg") return std::make_unique<Ijpeg>(options);
  if (name == "synthetic") {
    return std::make_unique<SyntheticWorkload>(default_synthetic_spec(options));
  }
  if (name == "false_sharing") return std::make_unique<FalseSharing>(options);
  if (name == "true_sharing") return std::make_unique<TrueSharing>(options);
  if (name == "producer_consumer") {
    return std::make_unique<ProducerConsumer>(options);
  }
  throw std::invalid_argument("unknown workload: " + std::string(name));
}

const std::vector<std::string>& paper_workload_names() {
  static const std::vector<std::string> names = {
      "tomcatv", "swim", "su2cor", "mgrid", "applu", "compress", "ijpeg"};
  return names;
}

bool is_workload_name(std::string_view name) noexcept {
  if (name == "synthetic") return true;
  for (const auto& known : paper_workload_names()) {
    if (name == known) return true;
  }
  for (const auto& known : sharing_workload_names()) {
    if (name == known) return true;
  }
  return false;
}

}  // namespace hpm::workloads
