// swim-like shallow-water kernel (SPEC95 102.swim).
//
// Thirteen equal-size N x N double arrays; each is touched exactly three
// times per timestep, so every array causes the same share of misses —
// 1/13 = 7.7%, exactly the profile of the paper's Table 1 (CU, H, P, V, U,
// CV, Z, VOLD, ... all at 7.7%).
#pragma once

#include "workloads/kernels_common.hpp"
#include "workloads/workload.hpp"

namespace hpm::workloads {

class Swim final : public Workload {
 public:
  explicit Swim(const WorkloadOptions& options = {});

  [[nodiscard]] std::string_view name() const override { return "swim"; }
  void setup(sim::Machine& machine) override;
  void run(sim::Machine& machine) override;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  static constexpr int kArrayCount = 13;

 private:
  std::uint64_t n_;
  std::uint64_t iterations_;
  // Velocity/pressure fields, fluxes, vorticity, height, previous step.
  Array2D<double> u_, v_, p_;
  Array2D<double> unew_, vnew_, pnew_;
  Array2D<double> uold_, vold_, pold_;
  Array2D<double> cu_, cv_, z_, h_;
};

}  // namespace hpm::workloads
