// Simulated process address space: segment layout, static/global allocation,
// a deterministic heap allocator (simulated malloc/free), a call stack for
// the stack-variable extension, and a separate instrumentation segment that
// hosts the measurement tools' own data structures.
//
// The layout mirrors the 64-bit Alpha binaries of the paper closely enough
// that early ijpeg heap blocks get names like "0x141020000", exactly as in
// Table 1.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace hpm::sim {

/// Identifies the source location ("allocation site") of a heap block; used
/// by the related-block aggregation extension (paper §5).
using AllocSite = std::uint32_t;
inline constexpr AllocSite kNoSite = 0;

struct SegmentLayout {
  AddrRange data{0x1'2000'0000ULL, 0x1'4000'0000ULL};    ///< globals/statics
  AddrRange heap{0x1'4100'0000ULL, 0x1'8000'0000ULL};    ///< simulated malloc
  AddrRange stack{0x1'1000'0000ULL, 0x1'1100'0000ULL};   ///< grows downward
  AddrRange instr{0x2'0000'0000ULL, 0x2'1000'0000ULL};   ///< tool data

  /// Span that covers every segment an application object can occupy (the
  /// n-way search starts from this range; the instr segment is excluded, as
  /// tool data is not an application object).
  [[nodiscard]] AddrRange application_span() const noexcept {
    return {stack.base, heap.bound};
  }
};

class AddressSpace {
 public:
  /// Callbacks let the object-mapping layer mirror allocation activity, the
  /// way the paper's tool instruments malloc/free and reads symbol tables.
  struct Hooks {
    std::function<void(std::string_view name, Addr, std::uint64_t size)>
        on_static;
    std::function<void(Addr, std::uint64_t size, AllocSite)> on_alloc;
    std::function<void(Addr)> on_free;
    std::function<void(AllocSite, Addr, std::uint64_t size)> on_arena;
    std::function<void(std::string_view func)> on_frame_push;
    std::function<void(std::string_view var, Addr, std::uint64_t size)>
        on_frame_local;
    std::function<void()> on_frame_pop;
  };

  explicit AddressSpace(SegmentLayout layout = {});

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }
  [[nodiscard]] const SegmentLayout& layout() const noexcept { return layout_; }

  // -- Globals / statics ----------------------------------------------------
  /// Allocate a named global; alignment must be a power of two.
  Addr define_static(std::string_view name, std::uint64_t size,
                     std::uint64_t align = 64);

  /// Advance the data-segment cursor without defining a symbol (layout
  /// control for region-boundary test scenarios).
  void reserve_data_gap(std::uint64_t bytes);

  // -- Heap -----------------------------------------------------------------
  /// Simulated malloc: first-fit over an address-ordered free list, 64-byte
  /// aligned so distinct blocks never share a cache line.  Returns kNullAddr
  /// on exhaustion.  If a grouping arena exists for `site`, the block is
  /// bump-allocated inside it instead (the §5 extension: "specialized
  /// [allocation functions] that arrange memory for measurement").
  Addr malloc(std::uint64_t size, AllocSite site = kNoSite);

  /// Reserve a contiguous heap arena for `site`; subsequent mallocs with
  /// that site land inside it, so related blocks form one contiguous region
  /// the search can treat as a unit.  Returns the arena range.
  AddrRange create_site_arena(AllocSite site, std::uint64_t bytes);
  [[nodiscard]] bool has_site_arena(AllocSite site) const {
    return arenas_.find(site) != arenas_.end();
  }
  /// Simulated free; no-op on kNullAddr.  Coalesces with free neighbours.
  void free(Addr addr);
  [[nodiscard]] std::uint64_t heap_bytes_in_use() const noexcept {
    return heap_in_use_;
  }
  [[nodiscard]] std::uint64_t heap_block_size(Addr addr) const;

  // -- Stack ----------------------------------------------------------------
  /// Push a function frame (stack-variable extension, paper §5).
  void push_frame(std::string_view function);
  /// Define a local in the current frame; returns its address.
  Addr define_local(std::string_view name, std::uint64_t size,
                    std::uint64_t align = 8);
  void pop_frame();
  [[nodiscard]] std::size_t frame_depth() const noexcept {
    return frames_.size();
  }
  [[nodiscard]] Addr stack_pointer() const noexcept { return stack_ptr_; }

  // -- Instrumentation segment ----------------------------------------------
  /// Bump allocation for tool-internal data (never freed; tools live for the
  /// whole run, like the paper's instrumentation).
  Addr alloc_instr(std::uint64_t size, std::uint64_t align = 64);
  [[nodiscard]] std::uint64_t instr_bytes_in_use() const noexcept {
    return instr_ptr_ - layout_.instr.base;
  }

 private:
  struct FreeBlock {
    Addr base;
    std::uint64_t size;
  };
  struct Frame {
    Addr saved_sp;
  };

  SegmentLayout layout_;
  Hooks hooks_;

  Addr data_ptr_;
  Addr instr_ptr_;
  Addr stack_ptr_;
  std::vector<Frame> frames_;

  struct Arena {
    Addr base;
    Addr cursor;
    Addr bound;
  };

  std::vector<FreeBlock> free_list_;              // address-ordered
  std::map<Addr, std::uint64_t> allocated_;       // block base -> size
  std::map<AllocSite, Arena> arenas_;
  std::uint64_t heap_in_use_ = 0;
};

}  // namespace hpm::sim
