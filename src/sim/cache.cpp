#include "sim/cache.hpp"

#include <bit>
#include <stdexcept>

namespace hpm::sim {

bool CacheConfig::valid() const noexcept {
  if (line_size == 0 || associativity == 0 || size_bytes == 0) return false;
  if (!std::has_single_bit(static_cast<std::uint64_t>(line_size))) return false;
  if (!std::has_single_bit(size_bytes)) return false;
  const std::uint64_t bytes_per_set =
      static_cast<std::uint64_t>(line_size) * associativity;
  if (size_bytes % bytes_per_set != 0) return false;
  return std::has_single_bit(num_sets());
}

Cache::Cache(const CacheConfig& config)
    : config_(config), rng_(config.random_seed) {
  if (!config_.valid()) {
    throw std::invalid_argument(
        "CacheConfig: size, line size and set count must be powers of two");
  }
  set_mask_ = config_.num_sets() - 1;
  line_bits_ = static_cast<std::uint32_t>(
      std::countr_zero(static_cast<std::uint64_t>(config_.line_size)));
  lines_.resize(config_.num_sets() * config_.associativity);
  if (config_.policy == ReplacementPolicy::kTreePlru) {
    if (!std::has_single_bit(static_cast<std::uint64_t>(config_.associativity))) {
      throw std::invalid_argument(
          "tree-PLRU requires power-of-two associativity");
    }
    plru_.assign(config_.num_sets(), 0);
  }
}

AccessResult Cache::access(Addr addr, bool write) {
  ++accesses_;
  ++tick_;
  const std::uint64_t line_no = addr >> line_bits_;
  const std::uint64_t set = line_no & set_mask_;
  const std::uint64_t tag = line_no >> std::countr_zero(set_mask_ + 1);
  Line* base = &lines_[set * config_.associativity];

  const bool write_allocates =
      config_.write_policy == WritePolicy::kWriteBackAllocate;
  for (std::uint32_t way = 0; way < config_.associativity; ++way) {
    Line& l = base[way];
    if (l.valid && l.tag == tag) {
      ++hits_;
      if (config_.policy == ReplacementPolicy::kLru) l.stamp = tick_;
      if (config_.policy == ReplacementPolicy::kTreePlru) touch_plru(set, way);
      // Write-through caches never hold dirty lines.
      l.dirty = write_allocates && (l.dirty || write);
      return {.hit = true};
    }
  }

  // Miss.  Under write-through/no-allocate, store misses go straight to
  // memory without filling a line.
  AccessResult result{.hit = false};
  if (write && !write_allocates) return result;
  std::uint32_t victim = config_.associativity;
  for (std::uint32_t way = 0; way < config_.associativity; ++way) {
    if (!base[way].valid) {
      victim = way;
      break;
    }
  }
  if (victim == config_.associativity) {
    victim = pick_victim(set);
    Line& v = base[victim];
    result.evicted = true;
    result.writeback = v.dirty;
    const std::uint64_t victim_line_no =
        (v.tag << std::countr_zero(set_mask_ + 1)) | set;
    result.victim_line = victim_line_no << line_bits_;
    if (v.dirty) ++writebacks_;
  }
  Line& l = base[victim];
  if (!l.valid) ++valid_lines_;  // filled a previously empty way
  l.valid = true;
  l.tag = tag;
  l.dirty = write && write_allocates;
  l.stamp = tick_;  // both LRU last-use and FIFO fill time start here
  if (config_.policy == ReplacementPolicy::kTreePlru) touch_plru(set, victim);
  return result;
}

bool Cache::probe(Addr addr) const {
  const std::uint64_t line_no = addr >> line_bits_;
  const std::uint64_t set = line_no & set_mask_;
  const std::uint64_t tag = line_no >> std::countr_zero(set_mask_ + 1);
  const Line* base = &lines_[set * config_.associativity];
  for (std::uint32_t way = 0; way < config_.associativity; ++way) {
    if (base[way].valid && base[way].tag == tag) return true;
  }
  return false;
}

Cache::SnoopResult Cache::invalidate(Addr addr) {
  const std::uint64_t line_no = addr >> line_bits_;
  const std::uint64_t set = line_no & set_mask_;
  const std::uint64_t tag = line_no >> std::countr_zero(set_mask_ + 1);
  Line* base = &lines_[set * config_.associativity];
  for (std::uint32_t way = 0; way < config_.associativity; ++way) {
    Line& l = base[way];
    if (l.valid && l.tag == tag) {
      const SnoopResult result{.present = true, .was_dirty = l.dirty};
      l = Line{};
      --valid_lines_;
      return result;
    }
  }
  return {};
}

Cache::SnoopResult Cache::clean(Addr addr) {
  const std::uint64_t line_no = addr >> line_bits_;
  const std::uint64_t set = line_no & set_mask_;
  const std::uint64_t tag = line_no >> std::countr_zero(set_mask_ + 1);
  Line* base = &lines_[set * config_.associativity];
  for (std::uint32_t way = 0; way < config_.associativity; ++way) {
    Line& l = base[way];
    if (l.valid && l.tag == tag) {
      const SnoopResult result{.present = true, .was_dirty = l.dirty};
      l.dirty = false;
      return result;
    }
  }
  return {};
}

Cache::SnoopResult Cache::probe_state(Addr addr) const {
  const std::uint64_t line_no = addr >> line_bits_;
  const std::uint64_t set = line_no & set_mask_;
  const std::uint64_t tag = line_no >> std::countr_zero(set_mask_ + 1);
  const Line* base = &lines_[set * config_.associativity];
  for (std::uint32_t way = 0; way < config_.associativity; ++way) {
    if (base[way].valid && base[way].tag == tag) {
      return {.present = true, .was_dirty = base[way].dirty};
    }
  }
  return {};
}

void Cache::flush() {
  for (auto& l : lines_) l = Line{};
  if (!plru_.empty()) plru_.assign(plru_.size(), 0);
  valid_lines_ = 0;
}

std::uint32_t Cache::pick_victim(std::uint64_t set) {
  const Line* base = &lines_[set * config_.associativity];
  switch (config_.policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      // LRU: oldest last-use stamp.  FIFO: oldest fill stamp (hits do not
      // refresh the stamp under FIFO, so the same scan works for both).
      std::uint32_t best = 0;
      std::uint64_t best_stamp = base[0].stamp;
      for (std::uint32_t way = 1; way < config_.associativity; ++way) {
        if (base[way].stamp < best_stamp) {
          best = way;
          best_stamp = base[way].stamp;
        }
      }
      return best;
    }
    case ReplacementPolicy::kRandom:
      return static_cast<std::uint32_t>(rng_.next() %
                                        config_.associativity);
    case ReplacementPolicy::kTreePlru:
      return plru_victim(set);
  }
  return 0;
}

// Tree-PLRU: bits index a complete binary tree; bit==0 means "left is older".
void Cache::touch_plru(std::uint64_t set, std::uint32_t way) {
  std::uint64_t& bits = plru_[set];
  std::uint32_t node = 1;
  // Walk from the root toward `way`, flipping each node to point away from
  // the path just used.
  for (std::uint32_t span = config_.associativity / 2; span >= 1; span /= 2) {
    const bool right = (way & span) != 0;
    if (right) {
      bits &= ~(1ULL << node);  // point left (away from used right side)
      node = node * 2 + 1;
    } else {
      bits |= (1ULL << node);  // point right
      node = node * 2;
    }
    if (span == 1) break;
  }
}

std::uint32_t Cache::plru_victim(std::uint64_t set) const {
  const std::uint64_t bits = plru_[set];
  std::uint32_t node = 1;
  std::uint32_t way = 0;
  for (std::uint32_t span = config_.associativity / 2; span >= 1; span /= 2) {
    const bool go_right = (bits >> node) & 1ULL;
    if (go_right) {
      way |= span;
      node = node * 2 + 1;
    } else {
      node = node * 2;
    }
    if (span == 1) break;
  }
  return way;
}

}  // namespace hpm::sim
