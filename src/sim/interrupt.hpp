// Interrupt kinds and the handler interface implemented by measurement
// tools (the paper's "instrumentation code", which runs inside the
// simulation and is charged virtual cycles).
#pragma once

#include <cstdint>

namespace hpm::sim {

class Machine;

enum class InterruptKind : std::uint8_t {
  kMissOverflow,       ///< the PMU miss-overflow counter reached zero
  kCycleTimer,         ///< the one-shot virtual cycle timer expired
  kCoherenceOverflow,  ///< the PMU coherence-event counter overflowed
};

class InterruptHandler {
 public:
  virtual ~InterruptHandler() = default;
  /// Called by the machine with interrupts masked.  The handler may access
  /// simulated memory through Machine::tool_load/tool_store and must charge
  /// its compute via Machine::tool_exec.
  virtual void on_interrupt(Machine& machine, InterruptKind kind) = 0;
};

}  // namespace hpm::sim
