// Configurable multi-level memory hierarchy.
//
// The paper's simulator is single-level (2 MB, §3), but its discussion of
// real PMUs — Itanium-style counters that observe only L1-filtered misses —
// needs more than one cache between the CPU and memory.  MemoryHierarchy
// generalizes the former `Cache` + optional L1-filter pair in sim::Machine
// into an ordered list of set-associative cache levels (innermost first,
// each keeping the full replacement/write-policy machinery of sim::Cache)
// plus a configurable *PMU observation level*: the level whose misses
// drive the miss counters, the last-miss-address register and the overflow
// interrupt.  The default observes the last (outermost) level, which is
// bit-for-bit the pre-hierarchy behaviour for both the single-level
// machine and the old 2-level L1-filter configuration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/cache.hpp"
#include "sim/types.hpp"

namespace hpm::sim {

/// One cache level of the hierarchy: a name (used in exports, reports and
/// the --levels CLI grammar) plus the full set-associative cache geometry.
struct LevelConfig {
  std::string name;  ///< e.g. "L1"; empty names resolve to "L<index+1>"
  CacheConfig cache{};
};

/// Sentinel for HierarchyConfig::observe_level: observe the outermost level.
inline constexpr std::size_t kObserveLast = static_cast<std::size_t>(-1);

struct HierarchyConfig {
  /// Levels in access order, innermost (closest to the CPU) first.  Empty
  /// means "single level from MachineConfig::cache" — the paper's setup.
  std::vector<LevelConfig> levels;
  /// Index of the level whose misses the PMU observes (counters, last-miss
  /// address, overflow).  kObserveLast preserves today's behaviour: the PMU
  /// sees only references that missed every cache.
  std::size_t observe_level = kObserveLast;
};

/// Kinds of MESI-style coherence events, reported per initiating core
/// through the coherence event sink (see MemoryHierarchy::
/// set_coherence_sink).  Events only arise on multi-core hierarchies with
/// at least one core-private level.
enum class CoherenceEventKind : std::uint8_t {
  kInvalidation,       ///< a write dropped a remote private copy
  kUpgrade,            ///< a write hit a locally Shared line (bus upgrade)
  kForcedWriteback,    ///< a snoop flushed/cleaned a Modified remote copy
  kSharingTransition,  ///< a read gave the line a second private holder
};

[[nodiscard]] std::string_view coherence_event_name(
    CoherenceEventKind kind) noexcept;

/// Per-level MESI bookkeeping.  One invalidation message is accounted per
/// (remote core, level) copy dropped: `invalidations_sent` is charged by
/// the issuing core's controller, `invalidations_received` by the owning
/// cache, so per-level equality of the two is a conservation invariant of
/// the whole aggregation pipeline.  `forced_writebacks` counts Modified
/// copies flushed by remote snoops (invalidation or read-downgrade) —
/// these never show up in Cache::writebacks(), which counts only capacity
/// evictions.
struct CoherenceStats {
  std::uint64_t invalidations_sent = 0;
  std::uint64_t invalidations_received = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t sharing_transitions = 0;
  std::uint64_t forced_writebacks = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return invalidations_received + upgrades + sharing_transitions +
           forced_writebacks;
  }
};

/// Value snapshot of one level's counters after (or during) a run.  The
/// counts are application + tool plane combined, exactly as the underlying
/// Cache counts them — real hardware cannot tell the planes apart either.
struct LevelSnapshot {
  std::string name;
  std::uint64_t size_bytes = 0;
  std::uint32_t line_size = 0;
  std::uint32_t associativity = 0;
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t resident_lines = 0;

  [[nodiscard]] double miss_rate() const noexcept {
    return accesses == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

class MemoryHierarchy {
 public:
  /// Missed every level (AccessOutcome::hit_level).
  static constexpr std::size_t kMissedAll = static_cast<std::size_t>(-1);

  /// Result of one reference walking the hierarchy.
  struct AccessOutcome {
    std::size_t hit_level = kMissedAll;  ///< kMissedAll when no level hit
    bool observed_miss = false;  ///< the reference missed the observed level
  };

  /// Build from resolved level configs (innermost first) and an observation
  /// index; `observe` may be kObserveLast.  Throws std::invalid_argument on
  /// an empty level list, an invalid cache geometry, a duplicate level name
  /// or an out-of-range observation level.
  ///
  /// With `cores` > 1 the level list splits into a core-local half and a
  /// shared half: the outermost `shared_levels` levels (clamped to
  /// [1, num_levels]) are shared by every core, each inner level is
  /// replicated per core, and a MESI-style directory keeps the private
  /// copies coherent.  `cores` == 1 is bit-for-bit the single-stream
  /// hierarchy regardless of `shared_levels`.
  MemoryHierarchy(const std::vector<LevelConfig>& levels, std::size_t observe,
                  unsigned cores = 1, std::size_t shared_levels = 1);

  /// Walk the levels innermost-first until a hit; every level on the miss
  /// path allocates (subject to its own write policy), exactly as the old
  /// L1-filter + measured-cache pair did.  The walk continues past the
  /// observed level so outer levels stay warm even when the PMU observes an
  /// inner one.
  AccessOutcome access(Addr addr, bool write) {
    const std::size_t n = caches_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (caches_[i].access(addr, write).hit) {
        return {i, i > observe_};
      }
    }
    return {kMissedAll, true};
  }

  /// Multi-core access: walk `core`'s private levels, then the shared
  /// levels, then settle MESI state against the other cores' private
  /// copies.  Must only be called on a hierarchy built with cores > 1
  /// (sim::Machine routes here via its own multicore flag).
  AccessOutcome access_mc(unsigned core, Addr addr, bool write);

  /// Receives every coherence event with the *initiating* core — the core
  /// whose reference triggered the bus transaction — and the referenced
  /// address, so per-core PMUs can attribute coherence traffic to data
  /// objects.  Pass nullptr to detach.
  using CoherenceEventSink =
      std::function<void(unsigned core, Addr addr, CoherenceEventKind kind)>;
  void set_coherence_sink(CoherenceEventSink sink) {
    sink_ = std::move(sink);
  }

  [[nodiscard]] std::size_t num_levels() const noexcept {
    return num_levels_;
  }
  [[nodiscard]] unsigned num_cores() const noexcept { return cores_; }
  /// Index of the first shared level (0 when every level is shared; equals
  /// num_levels() for the degenerate — and disallowed — all-private case).
  [[nodiscard]] std::size_t first_shared_level() const noexcept {
    return shared_from_;
  }
  [[nodiscard]] std::size_t observe_level() const noexcept { return observe_; }
  [[nodiscard]] const std::string& level_name(std::size_t i) const {
    return names_.at(i);
  }
  /// Level accessor; on a multi-core hierarchy a private index resolves to
  /// core 0's replica (use private_level() for other cores).
  [[nodiscard]] Cache& level(std::size_t i) {
    return i < shared_from_ ? private_.at(0).at(i)
                            : caches_.at(i - shared_from_);
  }
  [[nodiscard]] const Cache& level(std::size_t i) const {
    return i < shared_from_ ? private_.at(0).at(i)
                            : caches_.at(i - shared_from_);
  }
  /// A specific core's replica of private level `i` (i < first_shared_level).
  [[nodiscard]] const Cache& private_level(unsigned core,
                                           std::size_t i) const {
    return private_.at(core).at(i);
  }
  /// The cache whose misses the PMU observes — the "measured cache" in the
  /// paper's single-level terminology.  On a multi-core hierarchy an
  /// observed private level resolves to core 0's replica.
  [[nodiscard]] Cache& observed_cache() noexcept { return level(observe_); }
  [[nodiscard]] const Cache& observed_cache() const noexcept {
    return level(observe_);
  }

  /// Invalidate every level (all cores) and forget all directory state.
  void flush();

  /// Per-level counter snapshot, innermost first.  On a multi-core
  /// hierarchy, private-level counters are summed across cores.
  [[nodiscard]] std::vector<LevelSnapshot> snapshot() const;

  /// One core's view: its own private levels followed by the shared levels.
  [[nodiscard]] std::vector<LevelSnapshot> core_snapshot(unsigned core) const;

  /// Per-level coherence counters, innermost first (size num_levels();
  /// shared-level entries stay zero — coherence acts on private copies).
  [[nodiscard]] const std::vector<CoherenceStats>& coherence_stats()
      const noexcept {
    return coh_;
  }

 private:
  /// Directory entry for one (innermost-granularity) line: which cores
  /// hold a private copy, and whether `owner` holds it Modified.
  struct DirEntry {
    std::uint64_t sharers = 0;  ///< bit c set: core c holds a private copy
    unsigned owner = 0;         ///< meaningful when dirty
    bool dirty = false;
  };

  void emit(unsigned core, Addr addr, CoherenceEventKind kind) {
    if (sink_) sink_(core, addr, kind);
  }
  [[nodiscard]] bool core_holds(unsigned core, Addr addr) const;
  void drop_victim(unsigned core, Addr victim_line);

  std::vector<Cache> caches_;  ///< single-core: all levels; else shared only
  std::vector<std::string> names_;
  std::size_t observe_;
  std::size_t num_levels_ = 0;
  unsigned cores_ = 1;
  std::size_t shared_from_ = 0;  ///< 0 when single-core (caches_ = all)
  std::vector<std::vector<Cache>> private_;  ///< [core][level], multicore
  std::vector<CoherenceStats> coh_;          ///< per level, multicore
  std::unordered_map<Addr, DirEntry> directory_;
  std::vector<Addr> victim_scratch_;
  Addr coherence_line_mask_ = 0;
  CoherenceEventSink sink_;
};

// -- Level-spec grammar and presets ------------------------------------------
//
// The CLI (and docs/memory_hierarchy.md) describe hierarchies as a comma
// list of levels, innermost first:
//
//     NAME:SIZE[:LINE[:ASSOC]][,NAME:SIZE[:LINE[:ASSOC]]...]
//
// SIZE accepts k/m/g suffixes (powers of two: 32k = 32768).  LINE defaults
// to 64 bytes and ASSOC to 8 ways.  Example from the issue:
//
//     L1:32k:64:2,L2:256k:64:8,LLC:2m:64:8
//
// A bare preset name is also accepted: "paper" (single 2 MB level, §3),
// "2level" (32 KB L1 + 2 MB LLC) and "3level" (adds a 256 KB L2).

/// Parse "12345", "32k", "2m", "1g" (case-insensitive, power-of-two
/// multipliers).  Throws std::invalid_argument on malformed input.
[[nodiscard]] std::uint64_t parse_size_bytes(const std::string& text);

/// Parse a level-spec string (grammar above; preset names NOT accepted
/// here).  Throws std::invalid_argument with a message naming the bad
/// field on malformed input.
[[nodiscard]] HierarchyConfig parse_hierarchy_spec(const std::string& spec);

/// Render a size as the shortest spec-grammar token ("32768" -> "32k",
/// "2097152" -> "2m"); sizes that are not whole multiples of a suffix stay
/// decimal.
[[nodiscard]] std::string format_size_bytes(std::uint64_t bytes);

/// Render resolved levels back into the spec grammar, one
/// NAME:SIZE:LINE:ASSOC entry per level, innermost first.  The result
/// round-trips through parse_hierarchy_spec and is the *canonical* spelling
/// of a hierarchy: two configs with the same geometry format identically,
/// which is what the calibration search keys its candidate dedup on.
[[nodiscard]] std::string format_hierarchy_spec(
    const std::vector<LevelConfig>& levels);
[[nodiscard]] std::string format_hierarchy_spec(const HierarchyConfig& config);

/// The canonical preset names, in depth order: {"paper", "2level",
/// "3level"} ("single" is an alias of "paper" and is not listed).  This is
/// the default hierarchy candidate space of the calibration search.
[[nodiscard]] const std::vector<std::string>& hierarchy_preset_names();

/// Named presets: "paper"/"single" (one 2 MB level), "2level" (32 KB L1 +
/// 2 MB LLC), "3level" (adds a 256 KB L2).  Returns true and fills `out`
/// when `name` names a preset, false otherwise so callers can fall back to
/// the explicit grammar.
[[nodiscard]] bool hierarchy_preset(const std::string& name,
                                    HierarchyConfig& out);

/// Resolve a HierarchyConfig plus the single-level fallback geometry into
/// the concrete level list MemoryHierarchy is built from: empty levels
/// become one level of `fallback`, and empty names become "L<i+1>".
[[nodiscard]] std::vector<LevelConfig> resolve_levels(
    const HierarchyConfig& config, const CacheConfig& fallback);

/// The observation index implied by `config` for `num_levels` levels
/// (kObserveLast resolves to num_levels - 1).
[[nodiscard]] std::size_t resolve_observe_level(const HierarchyConfig& config,
                                                std::size_t num_levels);

}  // namespace hpm::sim
