// Simulated hardware performance monitoring unit (PMU).
//
// Models the feature set the paper assumes (§2): a set of cache-miss
// counters, each with base/bounds registers that restrict counting to an
// address region (Itanium-style conditional counting); a global miss
// counter; a "last cache miss address" register; and an overflow interrupt
// that fires after a user-defined number of misses (R10000/Alpha-style).
#pragma once

#include <array>
#include <cstdint>

#include "sim/fault_injection.hpp"
#include "sim/types.hpp"

namespace hpm::sim {

class PerfMonitor {
 public:
  static constexpr unsigned kMaxCounters = 32;

  explicit PerfMonitor(unsigned num_counters = 16);

  [[nodiscard]] unsigned num_counters() const noexcept {
    return num_counters_;
  }

  /// Install the fault layer (not owned; null restores ideal hardware).
  /// With an injector present, reads may be jittered/saturated and
  /// configure() may be applied only after the plan's reprogram delay.
  void set_fault_injector(FaultInjector* faults) noexcept { faults_ = faults; }

  // -- Region miss counters -------------------------------------------------
  /// Program counter `idx` to count misses whose address lies in
  /// [base, bound).  Resets the count and enables the counter.
  void configure(unsigned idx, Addr base, Addr bound);
  void disable(unsigned idx);
  void clear(unsigned idx);
  [[nodiscard]] bool enabled(unsigned idx) const;
  [[nodiscard]] std::uint64_t read(unsigned idx) const;
  [[nodiscard]] AddrRange region(unsigned idx) const;

  // -- Global miss counter and last-miss-address register --------------------
  [[nodiscard]] std::uint64_t global_misses() const noexcept {
    return global_;
  }
  void clear_global() noexcept { global_ = 0; }
  [[nodiscard]] Addr last_miss_address() const noexcept { return last_miss_; }

  // -- Miss-overflow interrupt ----------------------------------------------
  /// Arm an interrupt after `period` further misses (0 disarms).  Mirrors
  /// the R10000/Alpha counter-overflow mechanism the paper samples with.
  void arm_overflow(std::uint64_t period) noexcept {
    overflow_remaining_ = period;
    overflow_armed_ = period != 0;
    overflow_pending_ = false;
  }
  void disarm_overflow() noexcept {
    overflow_armed_ = false;
    overflow_pending_ = false;
  }
  [[nodiscard]] bool overflow_armed() const noexcept { return overflow_armed_; }
  [[nodiscard]] bool overflow_pending() const noexcept {
    return overflow_pending_;
  }
  void acknowledge_overflow() noexcept { overflow_pending_ = false; }

  // -- Coherence event plane (multi-core) ------------------------------------
  // Mirrors the miss plane for MESI coherence traffic: a global event
  // counter, a last-event-address register, and an overflow interrupt —
  // the R10000's external-invalidation counters generalized with the
  // last-address register the paper's sampler needs for attribution.
  [[nodiscard]] std::uint64_t global_coherence_events() const noexcept {
    return coherence_events_;
  }
  void clear_global_coherence() noexcept { coherence_events_ = 0; }
  [[nodiscard]] Addr last_coherence_address() const noexcept {
    return last_coherence_;
  }
  /// Arm an interrupt after `period` further coherence events (0 disarms).
  void arm_coherence_overflow(std::uint64_t period) noexcept {
    coherence_remaining_ = period;
    coherence_armed_ = period != 0;
    coherence_pending_ = false;
  }
  void disarm_coherence_overflow() noexcept {
    coherence_armed_ = false;
    coherence_pending_ = false;
  }
  [[nodiscard]] bool coherence_overflow_armed() const noexcept {
    return coherence_armed_;
  }
  [[nodiscard]] bool coherence_overflow_pending() const noexcept {
    return coherence_pending_;
  }
  void acknowledge_coherence_overflow() noexcept {
    coherence_pending_ = false;
  }

  /// Record one coherence event at `addr` (invalidation, upgrade, forced
  /// writeback or sharing transition — the PMU does not distinguish).
  void record_coherence_event(Addr addr) noexcept {
    ++coherence_events_;
    last_coherence_ = addr;
    if (coherence_armed_ && coherence_remaining_ > 0) {
      if (--coherence_remaining_ == 0) {
        coherence_pending_ = true;
        coherence_armed_ = false;
      }
    }
  }

  /// Record a cache miss at `addr`.  Called by the machine for every miss
  /// (application and instrumentation alike — real hardware cannot tell them
  /// apart).  Updates region counters, the global counter, the last-miss
  /// register, and the overflow countdown.
  void record_miss(Addr addr) noexcept {
    ++global_;
    last_miss_ = addr;
    for (unsigned i = 0; i < num_counters_; ++i) {
      Counter& c = counters_[i];
      if (c.enabled && addr >= c.base && addr < c.bound) ++c.count;
    }
    if (overflow_armed_ && overflow_remaining_ > 0) {
      if (--overflow_remaining_ == 0) {
        overflow_pending_ = true;
        overflow_armed_ = false;
      }
    }
    if (pending_reprograms_ != 0) tick_pending_reprograms();
  }

 private:
  struct Counter {
    Addr base = 0;
    Addr bound = 0;
    std::uint64_t count = 0;
    bool enabled = false;
  };

  /// A configure() held back by the fault layer's reprogram delay; applied
  /// after `remaining` further recorded misses.
  struct PendingReprogram {
    Addr base = 0;
    Addr bound = 0;
    std::uint64_t remaining = 0;
    bool active = false;
  };

  void check_index(unsigned idx) const;
  void tick_pending_reprograms() noexcept;

  std::array<Counter, kMaxCounters> counters_{};
  unsigned num_counters_;
  std::uint64_t global_ = 0;
  Addr last_miss_ = kNullAddr;
  std::uint64_t overflow_remaining_ = 0;
  bool overflow_armed_ = false;
  bool overflow_pending_ = false;
  std::uint64_t coherence_events_ = 0;
  Addr last_coherence_ = kNullAddr;
  std::uint64_t coherence_remaining_ = 0;
  bool coherence_armed_ = false;
  bool coherence_pending_ = false;
  FaultInjector* faults_ = nullptr;
  std::array<PendingReprogram, kMaxCounters> pending_{};
  unsigned pending_reprograms_ = 0;
};

}  // namespace hpm::sim
