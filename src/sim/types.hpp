// Fundamental simulator types.
#pragma once

#include <cstdint>

namespace hpm::sim {

/// Simulated virtual address.  The simulated address space mimics the 64-bit
/// layout of the Alpha binaries the paper instrumented (heap blocks appear at
/// addresses like 0x141020000, which the paper uses as object names).
using Addr = std::uint64_t;

/// Virtual cycles, as counted by the simulator's basic-block instrumentation.
using Cycles = std::uint64_t;

inline constexpr Addr kNullAddr = 0;

/// A half-open simulated address interval [base, bound).
struct AddrRange {
  Addr base = 0;
  Addr bound = 0;

  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return bound - base;
  }
  [[nodiscard]] constexpr bool contains(Addr a) const noexcept {
    return a >= base && a < bound;
  }
  [[nodiscard]] constexpr bool overlaps(const AddrRange& o) const noexcept {
    return !empty() && !o.empty() && base < o.bound && o.base < bound;
  }
  [[nodiscard]] constexpr bool empty() const noexcept { return bound <= base; }

  constexpr bool operator==(const AddrRange&) const noexcept = default;
};

}  // namespace hpm::sim
