// The simulated machine: executes workload memory references against the
// cache, keeps the virtual cycle clock, drives the PMU, and delivers
// interrupts to an installed measurement tool.
//
// Two access planes exist, mirroring the paper's setup where the
// instrumentation code runs *inside* the simulation:
//   * application plane (load/store/exec)  — the measured program;
//   * tool plane (tool_load/tool_store/tool_exec) — instrumentation code,
//     whose accesses also go through the cache (and therefore perturb the
//     application, Figure 3) and whose work is charged virtual cycles
//     (Figure 4).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/address_space.hpp"
#include "sim/backing_store.hpp"
#include "sim/cache.hpp"
#include "sim/cycle_model.hpp"
#include "sim/fault_injection.hpp"
#include "sim/interrupt.hpp"
#include "sim/memory_hierarchy.hpp"
#include "sim/perf_monitor.hpp"
#include "sim/types.hpp"

namespace hpm::sim {

struct MachineConfig {
  /// Geometry of the single measured cache when `hierarchy` is empty —
  /// the paper's setup.  Ignored once `hierarchy.levels` is non-empty.
  CacheConfig cache{};
  CycleModel cycles{};
  SegmentLayout layout{};
  unsigned num_miss_counters = 16;
  /// Simulated cores (1-64).  With more than one, the inner hierarchy
  /// levels are replicated per core (each with its own PerfMonitor,
  /// interrupt routing and stats mirror), the outermost `shared_levels`
  /// levels are shared, and a MESI-style directory keeps private copies
  /// coherent.  cores == 1 is bit-for-bit the single-stream machine.
  unsigned cores = 1;
  /// How many outermost hierarchy levels the cores share (clamped to
  /// [1, num_levels]; ignored when cores == 1).
  std::size_t shared_levels = 1;
  /// Multi-level cache hierarchy (innermost level first) with a
  /// configurable PMU observation level.  Empty levels = one level built
  /// from `cache`; observing the last level of a 2-level hierarchy
  /// reproduces the old Itanium-style L1-filter configuration bit for bit.
  HierarchyConfig hierarchy{};
  /// Hardware imperfections to inject (null plan: no fault layer at all,
  /// bit-identical behaviour to builds predating fault injection).
  FaultPlan faults{};
  /// Cooperative watchdog: abort the run with BudgetExceeded once the
  /// simulated clock passes this many cycles (0 = unlimited).  Deterministic.
  Cycles max_cycles = 0;
  /// Cooperative watchdog on host wall-clock time (0 = unlimited).  Only a
  /// hang backstop — it is inherently nondeterministic, so keep it off for
  /// reproducibility-sensitive sweeps and rely on max_cycles instead.
  double wall_budget_seconds = 0.0;
};

/// Thrown from the simulation loop when a cooperative budget is exhausted.
/// The batch harness maps this to RunOutcome::kTimedOut (never retried).
struct BudgetExceeded : std::runtime_error {
  enum class Kind { kCycles, kWallClock };
  BudgetExceeded(Kind k, const std::string& what)
      : std::runtime_error(what), kind(k) {}
  Kind kind;
};

struct MachineStats {
  std::uint64_t app_instructions = 0;  ///< includes one per memory reference
  std::uint64_t app_refs = 0;
  std::uint64_t app_misses = 0;  ///< misses at the PMU observation level
  /// App refs that hit a cache level above the observation level and were
  /// therefore invisible to the PMU (exported under the historical JSON
  /// key "l1_hits"; zero whenever the observation level is innermost).
  std::uint64_t filtered_hits = 0;
  std::uint64_t tool_refs = 0;
  std::uint64_t tool_misses = 0;
  Cycles app_cycles = 0;   ///< cycles attributable to the application
  Cycles tool_cycles = 0;  ///< handler compute + interrupt delivery
  std::uint64_t interrupts = 0;

  [[nodiscard]] std::uint64_t total_misses() const noexcept {
    return app_misses + tool_misses;
  }
  [[nodiscard]] Cycles total_cycles() const noexcept {
    return app_cycles + tool_cycles;
  }
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config = {});
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] AddressSpace& address_space() noexcept { return as_; }
  /// The active core's PMU (the only one on a single-core machine).
  [[nodiscard]] PerfMonitor& pmu() noexcept { return core_->pmu; }
  [[nodiscard]] const PerfMonitor& pmu() const noexcept {
    return core_->pmu;
  }
  /// A specific core's PMU.
  [[nodiscard]] PerfMonitor& pmu(unsigned core) { return cores_.at(core).pmu; }
  [[nodiscard]] const PerfMonitor& pmu(unsigned core) const {
    return cores_.at(core).pmu;
  }
  /// The cache the PMU observes — the paper's "measured cache" (for a
  /// single-level machine, the only one).
  [[nodiscard]] Cache& cache() noexcept { return hierarchy_.observed_cache(); }
  [[nodiscard]] MemoryHierarchy& hierarchy() noexcept { return hierarchy_; }
  [[nodiscard]] const MemoryHierarchy& hierarchy() const noexcept {
    return hierarchy_;
  }
  [[nodiscard]] const MachineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const MachineConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] Cycles now() const noexcept { return stats_.total_cycles(); }

  // -- Cores -------------------------------------------------------------
  [[nodiscard]] unsigned num_cores() const noexcept {
    return static_cast<unsigned>(cores_.size());
  }
  [[nodiscard]] unsigned active_core() const noexcept { return active_; }
  /// Route subsequent references, PMU access, handler installation and
  /// timer arming to `core`.  The workload scheduler calls this at every
  /// round-robin slice boundary; on a single-core machine core 0 is
  /// permanently active.
  void set_active_core(unsigned core) {
    core_ = &cores_.at(core);
    active_ = core;
  }
  /// Per-core stats mirror (maintained only on multi-core machines; on a
  /// single-core machine core 0's mirror stays zero and stats() is the
  /// single source of truth).
  [[nodiscard]] const MachineStats& core_stats(unsigned core) const {
    return cores_.at(core).stats;
  }
  /// Fault layer installed from MachineConfig::faults (null when the plan
  /// is none()).  Exposed so the harness can export FaultStats.
  [[nodiscard]] const FaultInjector* fault_injector() const noexcept {
    return faults_ ? &*faults_ : nullptr;
  }

  // -- Application plane -----------------------------------------------------
  /// Charge `count` non-memory instructions to the application.
  void exec(std::uint64_t count) {
    stats_.app_instructions += count;
    stats_.app_cycles += count * config_.cycles.cycles_per_instruction;
    if (multicore_) {
      core_->stats.app_instructions += count;
      core_->stats.app_cycles +=
          count * config_.cycles.cycles_per_instruction;
    }
    if (exec_observer_) exec_observer_(count);
    poll_interrupts();
  }

  template <typename T>
  [[nodiscard]] T load(Addr addr) {
    app_ref(addr, /*write=*/false);
    return store_.load<T>(addr);
  }

  template <typename T>
  void store(Addr addr, const T& value) {
    app_ref(addr, /*write=*/true);
    store_.store(addr, value);
  }

  /// Memory reference without data movement (for reference-pattern-only
  /// workloads and tests).
  void touch(Addr addr, bool write = false) { app_ref(addr, write); }

  // -- Tool plane --------------------------------------------------------
  /// Charge handler compute cycles.
  void tool_exec(Cycles cycles) {
    stats_.tool_cycles += cycles;
    if (multicore_) core_->stats.tool_cycles += cycles;
  }

  template <typename T>
  [[nodiscard]] T tool_load(Addr addr) {
    tool_ref(addr, /*write=*/false);
    return store_.load<T>(addr);
  }

  template <typename T>
  void tool_store(Addr addr, const T& value) {
    tool_ref(addr, /*write=*/true);
    store_.store(addr, value);
  }

  /// Tool-plane reference without data movement (shadow-footprint touches).
  void tool_touch(Addr addr, bool write = false) { tool_ref(addr, write); }

  // -- Interrupts --------------------------------------------------------
  /// Install the active core's interrupt handler (tools call this from
  /// start() after the harness selected their core).
  void set_handler(InterruptHandler* handler) noexcept {
    core_->handler = handler;
  }

  /// Arm the active core's PMU miss-overflow interrupt: fires after
  /// `period` misses observed by that core.
  void arm_miss_overflow(std::uint64_t period) noexcept {
    core_->pmu.arm_overflow(period);
  }

  /// Arm the active core's coherence-event overflow interrupt (multi-core
  /// machines; on a single core no coherence events ever arrive).
  void arm_coherence_overflow(std::uint64_t period) noexcept {
    core_->pmu.arm_coherence_overflow(period);
  }

  /// One-shot virtual timer `dt` cycles from now on the active core (the
  /// search technique's iteration clock).  The clock is the machine-wide
  /// virtual cycle count — cores share one timeline.
  void arm_timer_in(Cycles dt) noexcept {
    core_->timer_at = now() + dt;
    core_->timer_armed = true;
  }
  void disarm_timer() noexcept { core_->timer_armed = false; }
  [[nodiscard]] bool timer_armed() const noexcept {
    return core_->timer_armed;
  }

  // -- Ground truth --------------------------------------------------------
  /// Observer invoked on every miss, below the tool layer — "measured by
  /// lower levels of the simulator".  Costs nothing in simulated time.
  using MissObserver = std::function<void(Addr addr, bool is_tool)>;
  void set_miss_observer(MissObserver obs) { observer_ = std::move(obs); }

  /// Application-plane event observers (trace capture).  Like the miss
  /// observer these sit below the tool layer and cost no simulated time.
  using RefObserver = std::function<void(Addr addr, bool write)>;
  using ExecObserver = std::function<void(std::uint64_t count)>;
  void set_ref_observer(RefObserver obs) { ref_observer_ = std::move(obs); }
  void set_exec_observer(ExecObserver obs) {
    exec_observer_ = std::move(obs);
  }

  /// Observer invoked on every interrupt delivery, below the tool layer
  /// and at zero simulated cost (telemetry: overflow/timer accounting).
  using InterruptObserver = std::function<void(InterruptKind kind)>;
  void set_interrupt_observer(InterruptObserver obs) {
    interrupt_observer_ = std::move(obs);
  }

  /// Ground-truth observer for MESI coherence events (multi-core only):
  /// called below the tool layer with the initiating core, the referenced
  /// address and the event kind, at zero simulated cost.  The per-core
  /// PMUs record the same events regardless of this observer.
  using CoherenceObserver =
      std::function<void(unsigned core, Addr addr, CoherenceEventKind kind)>;
  void set_coherence_observer(CoherenceObserver obs) {
    coherence_observer_ = std::move(obs);
  }

  /// Periodic stats hook (telemetry's phase timeline): called with the
  /// cumulative stats roughly every `every` cycles of simulated progress,
  /// at zero simulated cost.  `every` == 0 uninstalls the hook; otherwise
  /// `hook` must be callable.  The disabled hot-path cost is a single
  /// integer test in poll_interrupts().
  using PeriodicHook = std::function<void(const MachineStats& stats)>;
  void set_periodic_hook(Cycles every, PeriodicHook hook) {
    hook_every_ = every;
    periodic_hook_ = std::move(hook);
    hook_next_ = every == 0 ? std::numeric_limits<Cycles>::max()
                            : now() + every;
  }

  /// Application-reference-count hook (live monitor-tree sampling): called
  /// with the cumulative stats roughly every `every` app references, at
  /// zero simulated cost.  Independent of the cycles-based periodic hook so
  /// telemetry's phase timeline and live streaming can coexist.  `every`
  /// == 0 uninstalls; the disabled hot-path cost is a single integer test
  /// in poll_interrupts().
  using RefsHook = std::function<void(const MachineStats& stats)>;
  void set_refs_hook(std::uint64_t every, RefsHook hook) {
    refs_hook_every_ = every;
    refs_hook_ = std::move(hook);
    refs_hook_next_ = every == 0 ? std::numeric_limits<std::uint64_t>::max()
                                 : stats_.app_refs + every;
  }

 private:
  /// Core-local half of the machine: the state the tentpole refactor
  /// splits out of the former singular members.  Every machine has at
  /// least one; on a single-core machine core 0's stats mirror stays zero
  /// (the aggregate stats_ is authoritative there, keeping the hot path —
  /// and therefore the output — bit-identical to the single-stream build).
  struct CoreState {
    explicit CoreState(unsigned num_counters) : pmu(num_counters) {}
    PerfMonitor pmu;
    MachineStats stats{};  ///< per-core mirror (multi-core only)
    InterruptHandler* handler = nullptr;
    Cycles timer_at = std::numeric_limits<Cycles>::max();
    bool timer_armed = false;
    bool overflow_deferred = false;       ///< overflow held back by skid
    std::uint64_t overflow_due_refs = 0;  ///< app_refs at which skid expires
  };

  void app_ref(Addr addr, bool write) {
    ++stats_.app_refs;
    ++stats_.app_instructions;
    if (ref_observer_) ref_observer_(addr, write);
    const MemoryHierarchy::AccessOutcome r =
        multicore_ ? hierarchy_.access_mc(active_, addr, write)
                   : hierarchy_.access(addr, write);
    const Cycles cost = config_.cycles.hierarchy_ref_cost(
        r.hit_level, hierarchy_.num_levels());
    stats_.app_cycles += cost;
    if (r.observed_miss) {
      ++stats_.app_misses;
      core_->pmu.record_miss(addr);
      if (observer_) observer_(addr, /*is_tool=*/false);
    } else if (r.hit_level < hierarchy_.observe_level()) {
      ++stats_.filtered_hits;
    }
    if (multicore_) {
      MachineStats& mine = core_->stats;
      ++mine.app_refs;
      ++mine.app_instructions;
      mine.app_cycles += cost;
      if (r.observed_miss) {
        ++mine.app_misses;
      } else if (r.hit_level < hierarchy_.observe_level()) {
        ++mine.filtered_hits;
      }
    }
    poll_interrupts();
  }

  void tool_ref(Addr addr, bool write) {
    ++stats_.tool_refs;
    const MemoryHierarchy::AccessOutcome r =
        multicore_ ? hierarchy_.access_mc(active_, addr, write)
                   : hierarchy_.access(addr, write);
    const Cycles cost = config_.cycles.hierarchy_ref_cost(
        r.hit_level, hierarchy_.num_levels());
    stats_.tool_cycles += cost;
    if (r.observed_miss) {
      ++stats_.tool_misses;
      // Real hardware counts instrumentation misses too.
      core_->pmu.record_miss(addr);
      if (observer_) observer_(addr, /*is_tool=*/true);
    }
    if (multicore_) {
      MachineStats& mine = core_->stats;
      ++mine.tool_refs;
      mine.tool_cycles += cost;
      if (r.observed_miss) ++mine.tool_misses;
    }
    // No interrupt polling: the tool plane runs with interrupts masked.
  }

  void poll_interrupts() {
    if (hook_every_ != 0 && stats_.total_cycles() >= hook_next_) {
      // Re-arm relative to *now* so a workload's large exec batches never
      // produce empty duplicate snapshots; slices are therefore >= every
      // cycles apart, not exactly every.
      hook_next_ = stats_.total_cycles() + hook_every_;
      periodic_hook_(stats_);
    }
    if (refs_hook_every_ != 0 && stats_.app_refs >= refs_hook_next_) {
      // Re-arm relative to now (like the cycles hook) so windows are
      // >= every refs apart and never empty.
      refs_hook_next_ = stats_.app_refs + refs_hook_every_;
      refs_hook_(stats_);
    }
    if (budgets_armed_) check_budgets();
    CoreState& core = *core_;
    if (core.handler == nullptr || in_handler_) return;
    if (core.pmu.overflow_pending()) {
      if (faults_) {
        deliver_overflow_faulted();
      } else {
        core.pmu.acknowledge_overflow();
        dispatch(InterruptKind::kMissOverflow);
      }
    }
    if (multicore_ && core.pmu.coherence_overflow_pending()) {
      core.pmu.acknowledge_coherence_overflow();
      dispatch(InterruptKind::kCoherenceOverflow);
    }
    if (core.timer_armed && now() >= core.timer_at) {
      core.timer_armed = false;
      dispatch(InterruptKind::kCycleTimer);
    }
  }

  void deliver_overflow_faulted();
  void check_budgets();
  void dispatch(InterruptKind kind);

  MachineConfig config_;
  BackingStore store_;
  AddressSpace as_;
  MemoryHierarchy hierarchy_;
  std::vector<CoreState> cores_;  ///< core-local halves, size >= 1
  CoreState* core_ = nullptr;     ///< active core (hot-path shortcut)
  unsigned active_ = 0;
  bool multicore_ = false;
  MachineStats stats_{};          ///< shared half: machine-wide aggregate
  MissObserver observer_;
  RefObserver ref_observer_;
  ExecObserver exec_observer_;
  InterruptObserver interrupt_observer_;
  CoherenceObserver coherence_observer_;
  PeriodicHook periodic_hook_;
  Cycles hook_every_ = 0;
  Cycles hook_next_ = std::numeric_limits<Cycles>::max();
  RefsHook refs_hook_;
  std::uint64_t refs_hook_every_ = 0;
  std::uint64_t refs_hook_next_ = std::numeric_limits<std::uint64_t>::max();
  bool in_handler_ = false;
  // Fault layer (absent for the null plan — zero cost on the hot path
  // beyond one optional-engaged test per pending overflow).  Shared: one
  // deterministic fault stream serves every core's PMU.
  std::optional<FaultInjector> faults_;
  // Cooperative budgets (single-branch when disarmed).
  bool budgets_armed_ = false;
  std::uint64_t budget_polls_ = 0;
  std::chrono::steady_clock::time_point wall_deadline_{};
};

}  // namespace hpm::sim
