// The simulated machine: executes workload memory references against the
// cache, keeps the virtual cycle clock, drives the PMU, and delivers
// interrupts to an installed measurement tool.
//
// Two access planes exist, mirroring the paper's setup where the
// instrumentation code runs *inside* the simulation:
//   * application plane (load/store/exec)  — the measured program;
//   * tool plane (tool_load/tool_store/tool_exec) — instrumentation code,
//     whose accesses also go through the cache (and therefore perturb the
//     application, Figure 3) and whose work is charged virtual cycles
//     (Figure 4).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>

#include "sim/address_space.hpp"
#include "sim/backing_store.hpp"
#include "sim/cache.hpp"
#include "sim/cycle_model.hpp"
#include "sim/fault_injection.hpp"
#include "sim/interrupt.hpp"
#include "sim/memory_hierarchy.hpp"
#include "sim/perf_monitor.hpp"
#include "sim/types.hpp"

namespace hpm::sim {

struct MachineConfig {
  /// Geometry of the single measured cache when `hierarchy` is empty —
  /// the paper's setup.  Ignored once `hierarchy.levels` is non-empty.
  CacheConfig cache{};
  CycleModel cycles{};
  SegmentLayout layout{};
  unsigned num_miss_counters = 16;
  /// Multi-level cache hierarchy (innermost level first) with a
  /// configurable PMU observation level.  Empty levels = one level built
  /// from `cache`; observing the last level of a 2-level hierarchy
  /// reproduces the old Itanium-style L1-filter configuration bit for bit.
  HierarchyConfig hierarchy{};
  /// Hardware imperfections to inject (null plan: no fault layer at all,
  /// bit-identical behaviour to builds predating fault injection).
  FaultPlan faults{};
  /// Cooperative watchdog: abort the run with BudgetExceeded once the
  /// simulated clock passes this many cycles (0 = unlimited).  Deterministic.
  Cycles max_cycles = 0;
  /// Cooperative watchdog on host wall-clock time (0 = unlimited).  Only a
  /// hang backstop — it is inherently nondeterministic, so keep it off for
  /// reproducibility-sensitive sweeps and rely on max_cycles instead.
  double wall_budget_seconds = 0.0;
};

/// Thrown from the simulation loop when a cooperative budget is exhausted.
/// The batch harness maps this to RunOutcome::kTimedOut (never retried).
struct BudgetExceeded : std::runtime_error {
  enum class Kind { kCycles, kWallClock };
  BudgetExceeded(Kind k, const std::string& what)
      : std::runtime_error(what), kind(k) {}
  Kind kind;
};

struct MachineStats {
  std::uint64_t app_instructions = 0;  ///< includes one per memory reference
  std::uint64_t app_refs = 0;
  std::uint64_t app_misses = 0;  ///< misses at the PMU observation level
  /// App refs that hit a cache level above the observation level and were
  /// therefore invisible to the PMU (exported under the historical JSON
  /// key "l1_hits"; zero whenever the observation level is innermost).
  std::uint64_t filtered_hits = 0;
  std::uint64_t tool_refs = 0;
  std::uint64_t tool_misses = 0;
  Cycles app_cycles = 0;   ///< cycles attributable to the application
  Cycles tool_cycles = 0;  ///< handler compute + interrupt delivery
  std::uint64_t interrupts = 0;

  [[nodiscard]] std::uint64_t total_misses() const noexcept {
    return app_misses + tool_misses;
  }
  [[nodiscard]] Cycles total_cycles() const noexcept {
    return app_cycles + tool_cycles;
  }
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config = {});
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] AddressSpace& address_space() noexcept { return as_; }
  [[nodiscard]] PerfMonitor& pmu() noexcept { return pmu_; }
  [[nodiscard]] const PerfMonitor& pmu() const noexcept { return pmu_; }
  /// The cache the PMU observes — the paper's "measured cache" (for a
  /// single-level machine, the only one).
  [[nodiscard]] Cache& cache() noexcept { return hierarchy_.observed_cache(); }
  [[nodiscard]] MemoryHierarchy& hierarchy() noexcept { return hierarchy_; }
  [[nodiscard]] const MemoryHierarchy& hierarchy() const noexcept {
    return hierarchy_;
  }
  [[nodiscard]] const MachineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const MachineConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] Cycles now() const noexcept { return stats_.total_cycles(); }
  /// Fault layer installed from MachineConfig::faults (null when the plan
  /// is none()).  Exposed so the harness can export FaultStats.
  [[nodiscard]] const FaultInjector* fault_injector() const noexcept {
    return faults_ ? &*faults_ : nullptr;
  }

  // -- Application plane -----------------------------------------------------
  /// Charge `count` non-memory instructions to the application.
  void exec(std::uint64_t count) {
    stats_.app_instructions += count;
    stats_.app_cycles += count * config_.cycles.cycles_per_instruction;
    if (exec_observer_) exec_observer_(count);
    poll_interrupts();
  }

  template <typename T>
  [[nodiscard]] T load(Addr addr) {
    app_ref(addr, /*write=*/false);
    return store_.load<T>(addr);
  }

  template <typename T>
  void store(Addr addr, const T& value) {
    app_ref(addr, /*write=*/true);
    store_.store(addr, value);
  }

  /// Memory reference without data movement (for reference-pattern-only
  /// workloads and tests).
  void touch(Addr addr, bool write = false) { app_ref(addr, write); }

  // -- Tool plane --------------------------------------------------------
  /// Charge handler compute cycles.
  void tool_exec(Cycles cycles) { stats_.tool_cycles += cycles; }

  template <typename T>
  [[nodiscard]] T tool_load(Addr addr) {
    tool_ref(addr, /*write=*/false);
    return store_.load<T>(addr);
  }

  template <typename T>
  void tool_store(Addr addr, const T& value) {
    tool_ref(addr, /*write=*/true);
    store_.store(addr, value);
  }

  /// Tool-plane reference without data movement (shadow-footprint touches).
  void tool_touch(Addr addr, bool write = false) { tool_ref(addr, write); }

  // -- Interrupts --------------------------------------------------------
  void set_handler(InterruptHandler* handler) noexcept { handler_ = handler; }

  /// Arm the PMU miss-overflow interrupt: fires after `period` misses.
  void arm_miss_overflow(std::uint64_t period) noexcept {
    pmu_.arm_overflow(period);
  }

  /// One-shot virtual timer `dt` cycles from now (the search technique's
  /// iteration clock).
  void arm_timer_in(Cycles dt) noexcept {
    timer_at_ = now() + dt;
    timer_armed_ = true;
  }
  void disarm_timer() noexcept { timer_armed_ = false; }
  [[nodiscard]] bool timer_armed() const noexcept { return timer_armed_; }

  // -- Ground truth --------------------------------------------------------
  /// Observer invoked on every miss, below the tool layer — "measured by
  /// lower levels of the simulator".  Costs nothing in simulated time.
  using MissObserver = std::function<void(Addr addr, bool is_tool)>;
  void set_miss_observer(MissObserver obs) { observer_ = std::move(obs); }

  /// Application-plane event observers (trace capture).  Like the miss
  /// observer these sit below the tool layer and cost no simulated time.
  using RefObserver = std::function<void(Addr addr, bool write)>;
  using ExecObserver = std::function<void(std::uint64_t count)>;
  void set_ref_observer(RefObserver obs) { ref_observer_ = std::move(obs); }
  void set_exec_observer(ExecObserver obs) {
    exec_observer_ = std::move(obs);
  }

  /// Observer invoked on every interrupt delivery, below the tool layer
  /// and at zero simulated cost (telemetry: overflow/timer accounting).
  using InterruptObserver = std::function<void(InterruptKind kind)>;
  void set_interrupt_observer(InterruptObserver obs) {
    interrupt_observer_ = std::move(obs);
  }

  /// Periodic stats hook (telemetry's phase timeline): called with the
  /// cumulative stats roughly every `every` cycles of simulated progress,
  /// at zero simulated cost.  `every` == 0 uninstalls the hook; otherwise
  /// `hook` must be callable.  The disabled hot-path cost is a single
  /// integer test in poll_interrupts().
  using PeriodicHook = std::function<void(const MachineStats& stats)>;
  void set_periodic_hook(Cycles every, PeriodicHook hook) {
    hook_every_ = every;
    periodic_hook_ = std::move(hook);
    hook_next_ = every == 0 ? std::numeric_limits<Cycles>::max()
                            : now() + every;
  }

  /// Application-reference-count hook (live monitor-tree sampling): called
  /// with the cumulative stats roughly every `every` app references, at
  /// zero simulated cost.  Independent of the cycles-based periodic hook so
  /// telemetry's phase timeline and live streaming can coexist.  `every`
  /// == 0 uninstalls; the disabled hot-path cost is a single integer test
  /// in poll_interrupts().
  using RefsHook = std::function<void(const MachineStats& stats)>;
  void set_refs_hook(std::uint64_t every, RefsHook hook) {
    refs_hook_every_ = every;
    refs_hook_ = std::move(hook);
    refs_hook_next_ = every == 0 ? std::numeric_limits<std::uint64_t>::max()
                                 : stats_.app_refs + every;
  }

 private:
  void app_ref(Addr addr, bool write) {
    ++stats_.app_refs;
    ++stats_.app_instructions;
    if (ref_observer_) ref_observer_(addr, write);
    const MemoryHierarchy::AccessOutcome r = hierarchy_.access(addr, write);
    stats_.app_cycles += config_.cycles.hierarchy_ref_cost(
        r.hit_level, hierarchy_.num_levels());
    if (r.observed_miss) {
      ++stats_.app_misses;
      pmu_.record_miss(addr);
      if (observer_) observer_(addr, /*is_tool=*/false);
    } else if (r.hit_level < hierarchy_.observe_level()) {
      ++stats_.filtered_hits;
    }
    poll_interrupts();
  }

  void tool_ref(Addr addr, bool write) {
    ++stats_.tool_refs;
    const MemoryHierarchy::AccessOutcome r = hierarchy_.access(addr, write);
    stats_.tool_cycles += config_.cycles.hierarchy_ref_cost(
        r.hit_level, hierarchy_.num_levels());
    if (r.observed_miss) {
      ++stats_.tool_misses;
      // Real hardware counts instrumentation misses too.
      pmu_.record_miss(addr);
      if (observer_) observer_(addr, /*is_tool=*/true);
    }
    // No interrupt polling: the tool plane runs with interrupts masked.
  }

  void poll_interrupts() {
    if (hook_every_ != 0 && stats_.total_cycles() >= hook_next_) {
      // Re-arm relative to *now* so a workload's large exec batches never
      // produce empty duplicate snapshots; slices are therefore >= every
      // cycles apart, not exactly every.
      hook_next_ = stats_.total_cycles() + hook_every_;
      periodic_hook_(stats_);
    }
    if (refs_hook_every_ != 0 && stats_.app_refs >= refs_hook_next_) {
      // Re-arm relative to now (like the cycles hook) so windows are
      // >= every refs apart and never empty.
      refs_hook_next_ = stats_.app_refs + refs_hook_every_;
      refs_hook_(stats_);
    }
    if (budgets_armed_) check_budgets();
    if (handler_ == nullptr || in_handler_) return;
    if (pmu_.overflow_pending()) {
      if (faults_) {
        deliver_overflow_faulted();
      } else {
        pmu_.acknowledge_overflow();
        dispatch(InterruptKind::kMissOverflow);
      }
    }
    if (timer_armed_ && now() >= timer_at_) {
      timer_armed_ = false;
      dispatch(InterruptKind::kCycleTimer);
    }
  }

  void deliver_overflow_faulted();
  void check_budgets();
  void dispatch(InterruptKind kind);

  MachineConfig config_;
  BackingStore store_;
  AddressSpace as_;
  MemoryHierarchy hierarchy_;
  PerfMonitor pmu_;
  MachineStats stats_{};
  InterruptHandler* handler_ = nullptr;
  MissObserver observer_;
  RefObserver ref_observer_;
  ExecObserver exec_observer_;
  InterruptObserver interrupt_observer_;
  PeriodicHook periodic_hook_;
  Cycles hook_every_ = 0;
  Cycles hook_next_ = std::numeric_limits<Cycles>::max();
  RefsHook refs_hook_;
  std::uint64_t refs_hook_every_ = 0;
  std::uint64_t refs_hook_next_ = std::numeric_limits<std::uint64_t>::max();
  Cycles timer_at_ = std::numeric_limits<Cycles>::max();
  bool timer_armed_ = false;
  bool in_handler_ = false;
  // Fault layer (absent for the null plan — zero cost on the hot path
  // beyond one optional-engaged test per pending overflow).
  std::optional<FaultInjector> faults_;
  bool overflow_deferred_ = false;      ///< overflow held back by skid
  std::uint64_t overflow_due_refs_ = 0; ///< app_refs at which skid expires
  // Cooperative budgets (single-branch when disarmed).
  bool budgets_armed_ = false;
  std::uint64_t budget_polls_ = 0;
  std::chrono::steady_clock::time_point wall_deadline_{};
};

}  // namespace hpm::sim
