#include "sim/machine.hpp"

namespace hpm::sim {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      as_(config.layout),
      cache_(config.cache),
      pmu_(config.num_miss_counters) {
  if (config.l1) l1_.emplace(*config.l1);
}

void Machine::dispatch(InterruptKind kind) {
  ++stats_.interrupts;
  stats_.tool_cycles += config_.cycles.interrupt_cost;
  if (interrupt_observer_) interrupt_observer_(kind);
  in_handler_ = true;
  handler_->on_interrupt(*this, kind);
  in_handler_ = false;
}

}  // namespace hpm::sim
