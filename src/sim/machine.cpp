#include "sim/machine.hpp"

namespace hpm::sim {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      as_(config.layout),
      hierarchy_(resolve_levels(config.hierarchy, config.cache),
                 config.hierarchy.observe_level,
                 config.cores == 0 ? 1 : config.cores,
                 config.shared_levels) {
  const unsigned cores = config.cores == 0 ? 1 : config.cores;
  cores_.reserve(cores);
  for (unsigned i = 0; i < cores; ++i) {
    cores_.emplace_back(config.num_miss_counters);
  }
  core_ = &cores_[0];
  multicore_ = cores > 1;
  if (multicore_) {
    // Every coherence event lands in the initiating core's PMU (the bus
    // transaction is charged to the reference that caused it) and, below
    // the tool layer, in the ground-truth observer.
    hierarchy_.set_coherence_sink(
        [this](unsigned core, Addr addr, CoherenceEventKind kind) {
          cores_[core].pmu.record_coherence_event(addr);
          if (coherence_observer_) coherence_observer_(core, addr, kind);
        });
  }
  if (!config.faults.none()) {
    validate(config.faults);
    faults_.emplace(config.faults);
    for (CoreState& core : cores_) {
      core.pmu.set_fault_injector(&*faults_);
    }
  }
  budgets_armed_ =
      config.max_cycles != 0 || config.wall_budget_seconds > 0.0;
  if (config.wall_budget_seconds > 0.0) {
    wall_deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(
                             config.wall_budget_seconds));
  }
}

void Machine::dispatch(InterruptKind kind) {
  ++stats_.interrupts;
  stats_.tool_cycles += config_.cycles.interrupt_cost;
  if (multicore_) {
    ++core_->stats.interrupts;
    core_->stats.tool_cycles += config_.cycles.interrupt_cost;
  }
  if (interrupt_observer_) interrupt_observer_(kind);
  in_handler_ = true;
  core_->handler->on_interrupt(*this, kind);
  in_handler_ = false;
}

// Skid/drop state machine for a pending overflow.  On the first poll after
// the counter fires, decide drop (acknowledge, never dispatch) or skid
// (leave the interrupt pending — the armed flag stays down, but pending
// stays up so tools cannot mistake the window for a dropped interrupt —
// and deliver once the application has issued skid_refs more references,
// by which point last_miss_address may already name a later miss).
void Machine::deliver_overflow_faulted() {
  CoreState& core = *core_;
  if (!core.overflow_deferred) {
    if (faults_->drop_overflow()) {
      core.pmu.acknowledge_overflow();
      return;
    }
    const std::uint32_t skid = faults_->plan().skid_refs;
    if (skid != 0) {
      core.overflow_deferred = true;
      core.overflow_due_refs = stats_.app_refs + skid;
      return;
    }
    core.pmu.acknowledge_overflow();
    dispatch(InterruptKind::kMissOverflow);
    return;
  }
  if (stats_.app_refs < core.overflow_due_refs) return;
  core.overflow_deferred = false;
  faults_->note_skid(faults_->plan().skid_refs);
  core.pmu.acknowledge_overflow();
  dispatch(InterruptKind::kMissOverflow);
}

void Machine::check_budgets() {
  if (config_.max_cycles != 0 && stats_.total_cycles() > config_.max_cycles) {
    throw BudgetExceeded(
        BudgetExceeded::Kind::kCycles,
        "simulated-cycle budget exceeded (" +
            std::to_string(config_.max_cycles) + " cycles)");
  }
  // Wall clock is sampled sparsely: a syscall per poll would dominate the
  // simulation, and the budget is only a hang backstop.
  if (config_.wall_budget_seconds > 0.0 &&
      (++budget_polls_ & 0xFFFF) == 0 &&
      std::chrono::steady_clock::now() > wall_deadline_) {
    throw BudgetExceeded(
        BudgetExceeded::Kind::kWallClock,
        "wall-clock budget exceeded (" +
            std::to_string(config_.wall_budget_seconds) + " s)");
  }
}

}  // namespace hpm::sim
