#include "sim/machine.hpp"

namespace hpm::sim {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      as_(config.layout),
      hierarchy_(resolve_levels(config.hierarchy, config.cache),
                 config.hierarchy.observe_level),
      pmu_(config.num_miss_counters) {
  if (!config.faults.none()) {
    validate(config.faults);
    faults_.emplace(config.faults);
    pmu_.set_fault_injector(&*faults_);
  }
  budgets_armed_ =
      config.max_cycles != 0 || config.wall_budget_seconds > 0.0;
  if (config.wall_budget_seconds > 0.0) {
    wall_deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(
                             config.wall_budget_seconds));
  }
}

void Machine::dispatch(InterruptKind kind) {
  ++stats_.interrupts;
  stats_.tool_cycles += config_.cycles.interrupt_cost;
  if (interrupt_observer_) interrupt_observer_(kind);
  in_handler_ = true;
  handler_->on_interrupt(*this, kind);
  in_handler_ = false;
}

// Skid/drop state machine for a pending overflow.  On the first poll after
// the counter fires, decide drop (acknowledge, never dispatch) or skid
// (leave the interrupt pending — the armed flag stays down, but pending
// stays up so tools cannot mistake the window for a dropped interrupt —
// and deliver once the application has issued skid_refs more references,
// by which point last_miss_address may already name a later miss).
void Machine::deliver_overflow_faulted() {
  if (!overflow_deferred_) {
    if (faults_->drop_overflow()) {
      pmu_.acknowledge_overflow();
      return;
    }
    const std::uint32_t skid = faults_->plan().skid_refs;
    if (skid != 0) {
      overflow_deferred_ = true;
      overflow_due_refs_ = stats_.app_refs + skid;
      return;
    }
    pmu_.acknowledge_overflow();
    dispatch(InterruptKind::kMissOverflow);
    return;
  }
  if (stats_.app_refs < overflow_due_refs_) return;
  overflow_deferred_ = false;
  faults_->note_skid(faults_->plan().skid_refs);
  pmu_.acknowledge_overflow();
  dispatch(InterruptKind::kMissOverflow);
}

void Machine::check_budgets() {
  if (config_.max_cycles != 0 && stats_.total_cycles() > config_.max_cycles) {
    throw BudgetExceeded(
        BudgetExceeded::Kind::kCycles,
        "simulated-cycle budget exceeded (" +
            std::to_string(config_.max_cycles) + " cycles)");
  }
  // Wall clock is sampled sparsely: a syscall per poll would dominate the
  // simulation, and the budget is only a hang backstop.
  if (config_.wall_budget_seconds > 0.0 &&
      (++budget_polls_ & 0xFFFF) == 0 &&
      std::chrono::steady_clock::now() > wall_deadline_) {
    throw BudgetExceeded(
        BudgetExceeded::Kind::kWallClock,
        "wall-clock budget exceeded (" +
            std::to_string(config_.wall_budget_seconds) + " s)");
  }
}

}  // namespace hpm::sim
