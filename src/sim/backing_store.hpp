// Sparse paged backing store for the simulated address space.
//
// Workload kernels in this repository are *real computations*: every value
// they read and write lives here, addressed by simulated virtual address.
// Pages are materialised lazily (zero-filled) so multi-gigabyte layouts cost
// only what is touched.
#pragma once

#include <array>
#include <cstring>
#include <memory>
#include <type_traits>
#include <unordered_map>

#include "sim/types.hpp"

namespace hpm::sim {

class BackingStore {
 public:
  static constexpr std::uint64_t kPageBits = 16;  // 64 KiB pages
  static constexpr std::uint64_t kPageSize = 1ULL << kPageBits;
  static constexpr std::uint64_t kPageMask = kPageSize - 1;

  BackingStore() = default;
  BackingStore(const BackingStore&) = delete;
  BackingStore& operator=(const BackingStore&) = delete;
  BackingStore(BackingStore&&) = default;
  BackingStore& operator=(BackingStore&&) = default;

  template <typename T>
  [[nodiscard]] T load(Addr addr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T out{};
    if ((addr & kPageMask) + sizeof(T) <= kPageSize) [[likely]] {
      const Page* p = find_page(addr);
      if (p != nullptr) {
        std::memcpy(&out, p->data() + (addr & kPageMask), sizeof(T));
      }
      return out;
    }
    read_bytes(addr, &out, sizeof(T));
    return out;
  }

  template <typename T>
  void store(Addr addr, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if ((addr & kPageMask) + sizeof(T) <= kPageSize) [[likely]] {
      Page& p = ensure_page(addr);
      std::memcpy(p.data() + (addr & kPageMask), &value, sizeof(T));
      return;
    }
    write_bytes(addr, &value, sizeof(T));
  }

  void read_bytes(Addr addr, void* out, std::uint64_t len) const;
  void write_bytes(Addr addr, const void* in, std::uint64_t len);
  void fill(Addr addr, std::uint8_t byte, std::uint64_t len);

  [[nodiscard]] std::size_t resident_pages() const noexcept {
    return pages_.size();
  }

 private:
  using Page = std::array<std::uint8_t, kPageSize>;

  [[nodiscard]] const Page* find_page(Addr addr) const {
    auto it = pages_.find(addr >> kPageBits);
    return it == pages_.end() ? nullptr : it->second.get();
  }
  Page& ensure_page(Addr addr);

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace hpm::sim
