#include "sim/fault_injection.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace hpm::sim {

void validate(const FaultPlan& plan) {
  if (plan.drop_rate < 0.0 || plan.drop_rate > 1.0) {
    throw std::invalid_argument("FaultPlan: drop_rate must be in [0,1]");
  }
  if (plan.jitter_rate < 0.0 || plan.jitter_rate > 1.0) {
    throw std::invalid_argument("FaultPlan: jitter_rate must be in [0,1]");
  }
}

std::string describe(const FaultPlan& plan) {
  if (plan.none()) return "none";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "skid=%u drop=%g jitter=%g/%u saturate=%llu delay=%u seed=%llu",
                plan.skid_refs, plan.drop_rate, plan.jitter_rate,
                plan.jitter_magnitude,
                static_cast<unsigned long long>(plan.saturate_at),
                plan.reprogram_delay_misses,
                static_cast<unsigned long long>(plan.seed));
  return buf;
}

}  // namespace hpm::sim
