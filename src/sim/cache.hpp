// Single-level set-associative cache model.
//
// Matches the simulator in the paper's §3: a single-level set-associative
// cache (2 MB for the experiments), write-allocate / write-back.  The
// replacement policy is configurable (the paper does not name one; LRU is
// the default and the ablation micro-benches sweep the alternatives).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "util/prng.hpp"

namespace hpm::sim {

enum class ReplacementPolicy : std::uint8_t { kLru, kFifo, kRandom, kTreePlru };

enum class WritePolicy : std::uint8_t {
  kWriteBackAllocate,     ///< paper default: allocate on write, write back
  kWriteThroughNoAllocate ///< stores bypass on miss; hits write through
};

struct CacheConfig {
  std::uint64_t size_bytes = 2ULL * 1024 * 1024;  ///< paper: 2 MB
  std::uint32_t line_size = 64;
  std::uint32_t associativity = 8;
  ReplacementPolicy policy = ReplacementPolicy::kLru;
  WritePolicy write_policy = WritePolicy::kWriteBackAllocate;
  std::uint64_t random_seed = 0x243f6a8885a308d3ULL;  ///< kRandom only

  [[nodiscard]] std::uint64_t num_sets() const noexcept {
    return size_bytes / (static_cast<std::uint64_t>(line_size) * associativity);
  }
  /// A config is valid if all geometry fields are powers of two and consistent.
  [[nodiscard]] bool valid() const noexcept;
};

/// Result of one cache access.
struct AccessResult {
  bool hit = false;
  bool writeback = false;     ///< a dirty victim line was evicted
  Addr victim_line = 0;       ///< line address of the victim (if any evicted)
  bool evicted = false;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Access the line containing `addr`; `write` marks the line dirty.
  AccessResult access(Addr addr, bool write);

  /// True if the line containing `addr` is currently resident (no state
  /// change; used by tests and the perturbation analysis).
  [[nodiscard]] bool probe(Addr addr) const;

  /// Result of a coherence snoop action (invalidate / clean).
  struct SnoopResult {
    bool present = false;    ///< the line was resident before the snoop
    bool was_dirty = false;  ///< ...and held modified data
  };

  /// Drop the line containing `addr` (coherence invalidation).  Not an
  /// access: hit/miss counters are untouched; the caller accounts any
  /// forced writeback (the backing store is functional, always current).
  SnoopResult invalidate(Addr addr);

  /// Downgrade the line containing `addr` to clean — a remote reader
  /// snooped a modified line.  The line stays resident; not an access.
  SnoopResult clean(Addr addr);

  /// Residency + dirty state of the line containing `addr`, with no state
  /// change (the coherence directory uses this to track ownership).
  [[nodiscard]] SnoopResult probe_state(Addr addr) const;

  /// Invalidate everything (dirty contents are discarded; the backing store
  /// is always up to date because the simulator is functional, not timing-
  /// accurate at the memory level).
  void flush();

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return accesses_ - hits_;
  }
  [[nodiscard]] std::uint64_t writebacks() const noexcept {
    return writebacks_;
  }
  /// Number of distinct lines currently valid.  O(1): maintained
  /// incrementally on fill/flush, so telemetry may sample it every
  /// timeline tick without an O(sets x ways) scan.
  [[nodiscard]] std::uint64_t resident_lines() const noexcept {
    return valid_lines_;
  }

  /// Line-align an address under this cache's geometry.
  [[nodiscard]] Addr line_base(Addr addr) const noexcept {
    return addr & ~static_cast<Addr>(config_.line_size - 1);
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t stamp = 0;  // LRU: last use; FIFO: fill time
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::uint32_t pick_victim(std::uint64_t set);
  void touch_plru(std::uint64_t set, std::uint32_t way);
  [[nodiscard]] std::uint32_t plru_victim(std::uint64_t set) const;

  CacheConfig config_;
  std::uint64_t set_mask_;
  std::uint32_t line_bits_;
  std::vector<Line> lines_;          // lines_[set * assoc + way]
  std::vector<std::uint64_t> plru_;  // per-set tree bits (kTreePlru)
  util::SplitMix64 rng_;
  std::uint64_t tick_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t writebacks_ = 0;
  std::uint64_t valid_lines_ = 0;
};

}  // namespace hpm::sim
