#include "sim/address_space.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpm::sim {

namespace {
constexpr Addr align_up(Addr a, std::uint64_t align) noexcept {
  return (a + align - 1) & ~(align - 1);
}
constexpr Addr align_down(Addr a, std::uint64_t align) noexcept {
  return a & ~(align - 1);
}
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}
}  // namespace

AddressSpace::AddressSpace(SegmentLayout layout)
    : layout_(layout),
      data_ptr_(layout.data.base),
      instr_ptr_(layout.instr.base),
      stack_ptr_(layout.stack.bound) {
  free_list_.push_back({layout_.heap.base, layout_.heap.size()});
}

Addr AddressSpace::define_static(std::string_view name, std::uint64_t size,
                                 std::uint64_t align) {
  if (size == 0 || !is_pow2(align)) {
    throw std::invalid_argument("define_static: bad size/alignment");
  }
  const Addr base = align_up(data_ptr_, align);
  if (base + size > layout_.data.bound) {
    throw std::length_error("data segment exhausted");
  }
  data_ptr_ = base + size;
  if (hooks_.on_static) hooks_.on_static(name, base, size);
  return base;
}

void AddressSpace::reserve_data_gap(std::uint64_t bytes) {
  if (data_ptr_ + bytes > layout_.data.bound) {
    throw std::length_error("data segment exhausted");
  }
  data_ptr_ += bytes;
}

AddrRange AddressSpace::create_site_arena(AllocSite site,
                                          std::uint64_t bytes) {
  if (site == kNoSite) {
    throw std::invalid_argument("create_site_arena: needs a real site");
  }
  if (arenas_.find(site) != arenas_.end()) {
    throw std::invalid_argument("create_site_arena: site already has one");
  }
  const std::uint64_t need = align_up(bytes, 64);
  // Carve contiguous space out of the free list (first fit, like malloc).
  for (std::size_t i = 0; i < free_list_.size(); ++i) {
    FreeBlock& fb = free_list_[i];
    if (fb.size < need) continue;
    const Addr base = fb.base;
    if (fb.size == need) {
      free_list_.erase(free_list_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      fb.base += need;
      fb.size -= need;
    }
    arenas_.emplace(site, Arena{base, base, base + need});
    if (hooks_.on_arena) hooks_.on_arena(site, base, need);
    return {base, base + need};
  }
  throw std::length_error("create_site_arena: heap exhausted");
}

Addr AddressSpace::malloc(std::uint64_t size, AllocSite site) {
  if (size == 0) size = 1;
  const std::uint64_t need = align_up(size, 64);
  // Grouping arena (§5): related blocks are placed contiguously.
  if (auto it = arenas_.find(site); it != arenas_.end()) {
    Arena& arena = it->second;
    if (arena.cursor + need <= arena.bound) {
      const Addr base = arena.cursor;
      arena.cursor += need;
      allocated_.emplace(base, need);
      heap_in_use_ += need;
      if (hooks_.on_alloc) hooks_.on_alloc(base, need, site);
      return base;
    }
    // Arena full: fall through to the general allocator.
  }
  // First fit over the address-ordered free list keeps placement
  // deterministic and produces the low, dense heap addresses the paper's
  // object names reflect.
  for (std::size_t i = 0; i < free_list_.size(); ++i) {
    FreeBlock& fb = free_list_[i];
    if (fb.size < need) continue;
    const Addr base = fb.base;
    if (fb.size == need) {
      free_list_.erase(free_list_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      fb.base += need;
      fb.size -= need;
    }
    allocated_.emplace(base, need);
    heap_in_use_ += need;
    if (hooks_.on_alloc) hooks_.on_alloc(base, need, site);
    return base;
  }
  return kNullAddr;
}

void AddressSpace::free(Addr addr) {
  if (addr == kNullAddr) return;
  auto it = allocated_.find(addr);
  if (it == allocated_.end()) {
    throw std::invalid_argument("free: not an allocated block base");
  }
  const std::uint64_t size = it->second;
  allocated_.erase(it);
  heap_in_use_ -= size;
  if (hooks_.on_free) hooks_.on_free(addr);

  // Blocks inside a grouping arena are not recycled through the general
  // free list — the arena stays reserved for its site so unrelated blocks
  // never interleave with the group.
  for (const auto& [site, arena] : arenas_) {
    if (addr >= arena.base && addr < arena.bound) return;
  }

  // Insert into the address-ordered free list and coalesce neighbours.
  auto pos = std::lower_bound(
      free_list_.begin(), free_list_.end(), addr,
      [](const FreeBlock& fb, Addr a) { return fb.base < a; });
  pos = free_list_.insert(pos, {addr, size});
  // Coalesce with successor.
  if (auto next = pos + 1;
      next != free_list_.end() && pos->base + pos->size == next->base) {
    pos->size += next->size;
    free_list_.erase(next);
  }
  // Coalesce with predecessor.
  if (pos != free_list_.begin()) {
    auto prev = pos - 1;
    if (prev->base + prev->size == pos->base) {
      prev->size += pos->size;
      free_list_.erase(pos);
    }
  }
}

std::uint64_t AddressSpace::heap_block_size(Addr addr) const {
  auto it = allocated_.find(addr);
  return it == allocated_.end() ? 0 : it->second;
}

void AddressSpace::push_frame(std::string_view function) {
  frames_.push_back({stack_ptr_});
  if (hooks_.on_frame_push) hooks_.on_frame_push(function);
}

Addr AddressSpace::define_local(std::string_view name, std::uint64_t size,
                                std::uint64_t align) {
  if (frames_.empty()) {
    throw std::logic_error("define_local outside any frame");
  }
  if (size == 0 || !is_pow2(align)) {
    throw std::invalid_argument("define_local: bad size/alignment");
  }
  const Addr base = align_down(stack_ptr_ - size, align);
  if (base < layout_.stack.base) throw std::length_error("stack overflow");
  stack_ptr_ = base;
  if (hooks_.on_frame_local) hooks_.on_frame_local(name, base, size);
  return base;
}

void AddressSpace::pop_frame() {
  if (frames_.empty()) throw std::logic_error("pop_frame with empty stack");
  stack_ptr_ = frames_.back().saved_sp;
  frames_.pop_back();
  if (hooks_.on_frame_pop) hooks_.on_frame_pop();
}

Addr AddressSpace::alloc_instr(std::uint64_t size, std::uint64_t align) {
  if (size == 0 || !is_pow2(align)) {
    throw std::invalid_argument("alloc_instr: bad size/alignment");
  }
  const Addr base = align_up(instr_ptr_, align);
  if (base + size > layout_.instr.bound) {
    throw std::length_error("instrumentation segment exhausted");
  }
  instr_ptr_ = base + size;
  return base;
}

}  // namespace hpm::sim
