// Virtual cycle cost model.
//
// The paper's simulator keeps a virtual cycle count via basic-block
// instrumentation and explicitly does not model pipelining or multiple
// issue ("the cycle counts ... are meant to model RISC processors in
// general").  The interrupt delivery cost of 8,800 cycles is the paper's
// own measurement on a 175 MHz SGI Octane (~50 µs per interrupt).
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace hpm::sim {

struct CycleModel {
  Cycles cycles_per_instruction = 1;  ///< every instruction, incl. ld/st
  Cycles cache_hit_extra = 0;         ///< additional cycles on a hit
  Cycles cache_miss_penalty = 50;     ///< additional cycles on a miss
  Cycles interrupt_cost = 8'800;      ///< OS signal delivery (paper §3.3)

  [[nodiscard]] constexpr Cycles ref_cost(bool hit) const noexcept {
    return cycles_per_instruction +
           (hit ? cache_hit_extra : cache_miss_penalty);
  }
};

}  // namespace hpm::sim
