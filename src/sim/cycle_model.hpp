// Virtual cycle cost model.
//
// The paper's simulator keeps a virtual cycle count via basic-block
// instrumentation and explicitly does not model pipelining or multiple
// issue ("the cycle counts ... are meant to model RISC processors in
// general").  The interrupt delivery cost of 8,800 cycles is the paper's
// own measurement on a 175 MHz SGI Octane (~50 µs per interrupt).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace hpm::sim {

struct CycleModel {
  Cycles cycles_per_instruction = 1;  ///< every instruction, incl. ld/st
  Cycles cache_hit_extra = 0;         ///< additional cycles on a hit
  Cycles cache_miss_penalty = 50;     ///< additional cycles on a miss
  Cycles interrupt_cost = 8'800;      ///< OS signal delivery (paper §3.3)
  /// Per-hierarchy-level hit latencies: extra cycles charged when a
  /// reference hits at level i (a hit at level i+1 is by definition the
  /// miss latency of level i, so this vector is also the per-level miss
  /// latency table; cache_miss_penalty is the miss latency of the last
  /// level — DRAM).  Levels beyond the vector fall back to the defaults
  /// that reproduce the pre-hierarchy model exactly: 0 for inner levels,
  /// cache_hit_extra for the last level.
  std::vector<Cycles> level_hit_extra{};

  [[nodiscard]] constexpr Cycles ref_cost(bool hit) const noexcept {
    return cycles_per_instruction +
           (hit ? cache_hit_extra : cache_miss_penalty);
  }

  /// Extra cycles for a reference that hit at `level` of `num_levels`.
  [[nodiscard]] Cycles hit_extra_at(std::size_t level,
                                    std::size_t num_levels) const noexcept {
    if (level < level_hit_extra.size()) return level_hit_extra[level];
    return level + 1 == num_levels ? cache_hit_extra : 0;
  }

  /// Full reference cost under the hierarchy model: `hit_level` is the
  /// level that hit, or >= num_levels when the reference missed everywhere.
  [[nodiscard]] Cycles hierarchy_ref_cost(std::size_t hit_level,
                                          std::size_t num_levels)
      const noexcept {
    if (hit_level >= num_levels) {
      return cycles_per_instruction + cache_miss_penalty;
    }
    return cycles_per_instruction + hit_extra_at(hit_level, num_levels);
  }
};

}  // namespace hpm::sim
