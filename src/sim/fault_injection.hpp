// PMU fault injection: deterministic, seed-driven perturbation of the
// simulated performance-monitoring hardware.
//
// The paper's techniques assume ideal counters — every Nth-miss overflow
// interrupt arrives instantly with a precise miss address.  Real hardware
// does not behave this way: overflow interrupts exhibit skid (the handler
// runs several references after the miss that armed it, so the "last miss
// address" register already holds a later reference's address), interrupts
// are occasionally dropped outright, counter reads can be jittered or
// saturated by narrow hardware registers, and reprogramming base/bounds
// registers takes effect only after a latency window.  A FaultPlan makes
// each of these imperfections injectable so the measurement tools can be
// shown to degrade gracefully instead of silently mis-attributing.
//
// Determinism contract: every fault decision flows through one PRNG seeded
// from the plan, owned by the run's Machine (shared-nothing, like the rest
// of the simulator).  The same (workload, tool, plan) triple therefore
// produces bit-identical results at any --jobs level, and an all-zero plan
// installs no fault layer at all — the unfaulted hot paths are untouched.
#pragma once

#include <cstdint>
#include <string>

#include "util/prng.hpp"

namespace hpm::sim {

/// Declarative description of the hardware imperfections to inject.  The
/// default-constructed plan is the null plan: no layer is installed.
struct FaultPlan {
  std::uint64_t seed = 0x0fa417;  ///< PRNG seed for probabilistic faults
  /// Overflow interrupts are delivered this many application references
  /// after the overflow occurs; the last-miss-address register keeps
  /// tracking newer misses during the window, so the handler may attribute
  /// the sample to a later reference's object.
  std::uint32_t skid_refs = 0;
  /// Probability in [0,1] that a pending overflow interrupt is silently
  /// dropped (the counter fired but no interrupt is ever delivered).
  double drop_rate = 0.0;
  /// Probability in [0,1] that a region-counter read returns a jittered
  /// value (uniform in [value - magnitude, value + magnitude], floored at
  /// zero).
  double jitter_rate = 0.0;
  std::uint32_t jitter_magnitude = 0;
  /// Region-counter reads clamp at this value (narrow hardware counter);
  /// 0 disables saturation.
  std::uint64_t saturate_at = 0;
  /// Base/bounds reprogramming takes effect only after this many further
  /// recorded misses; the counter keeps counting its old region (and keeps
  /// its old count) during the window.
  std::uint32_t reprogram_delay_misses = 0;

  /// True when every knob is at its neutral value — no layer is installed
  /// and behaviour is bit-identical to a build without fault injection.
  [[nodiscard]] bool none() const noexcept {
    return skid_refs == 0 && drop_rate <= 0.0 && jitter_rate <= 0.0 &&
           saturate_at == 0 && reprogram_delay_misses == 0;
  }
};

/// Throws std::invalid_argument when a probability falls outside [0,1].
void validate(const FaultPlan& plan);

/// One-line human-readable summary ("skid=4 drop=0.01 ..."), "none" for the
/// null plan.  Used by bench rows and hpmrun diagnostics.
[[nodiscard]] std::string describe(const FaultPlan& plan);

/// Counters of every fault actually injected during a run (ground truth for
/// the degradation study; exported as the batch "faults" block and the
/// pmu.* telemetry counters).
struct FaultStats {
  std::uint64_t interrupts_dropped = 0;
  std::uint64_t skid_events = 0;  ///< overflow deliveries that were delayed
  std::uint64_t skid_refs = 0;    ///< total references of skid applied
  std::uint64_t reads_jittered = 0;
  std::uint64_t reads_saturated = 0;
  std::uint64_t reprograms_delayed = 0;
};

/// The runtime half of a FaultPlan: owns the PRNG and decides, per event,
/// whether and how to perturb.  One injector per Machine; never shared.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), rng_(plan.seed) {}

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  /// Decide whether the overflow that just fired is dropped.  Consumes
  /// PRNG state only when drop_rate is in (0,1), so a zero-rate plan stays
  /// bit-identical to no plan.
  [[nodiscard]] bool drop_overflow() {
    if (plan_.drop_rate <= 0.0) return false;
    if (plan_.drop_rate < 1.0 && rng_.next_double() >= plan_.drop_rate) {
      return false;
    }
    ++stats_.interrupts_dropped;
    return true;
  }

  /// Record that an overflow delivery was deferred by `refs` references.
  void note_skid(std::uint32_t refs) noexcept {
    ++stats_.skid_events;
    stats_.skid_refs += refs;
  }

  void note_reprogram_delayed() noexcept { ++stats_.reprograms_delayed; }

  /// True when counter reads need to pass through perturb_read at all.
  [[nodiscard]] bool perturbs_reads() const noexcept {
    return plan_.jitter_rate > 0.0 || plan_.saturate_at != 0;
  }

  /// Apply read jitter and saturation to a raw counter value.
  [[nodiscard]] std::uint64_t perturb_read(std::uint64_t value) {
    if (plan_.jitter_rate > 0.0 && rng_.next_double() < plan_.jitter_rate) {
      const std::uint64_t magnitude =
          plan_.jitter_magnitude == 0
              ? 0
              : rng_.next_below(std::uint64_t{plan_.jitter_magnitude} + 1);
      if ((rng_.next() & 1) != 0) {
        value += magnitude;
      } else {
        value = value > magnitude ? value - magnitude : 0;
      }
      ++stats_.reads_jittered;
    }
    if (plan_.saturate_at != 0 && value > plan_.saturate_at) {
      value = plan_.saturate_at;
      ++stats_.reads_saturated;
    }
    return value;
  }

 private:
  FaultPlan plan_;
  util::Xoshiro256 rng_;
  FaultStats stats_;
};

}  // namespace hpm::sim
