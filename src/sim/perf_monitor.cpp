#include "sim/perf_monitor.hpp"

#include <stdexcept>

namespace hpm::sim {

PerfMonitor::PerfMonitor(unsigned num_counters)
    : num_counters_(num_counters) {
  if (num_counters == 0 || num_counters > kMaxCounters) {
    throw std::invalid_argument("PerfMonitor: counter count out of range");
  }
}

void PerfMonitor::check_index(unsigned idx) const {
  if (idx >= num_counters_) {
    throw std::out_of_range("PerfMonitor: counter index out of range");
  }
}

void PerfMonitor::configure(unsigned idx, Addr base, Addr bound) {
  check_index(idx);
  if (bound < base) throw std::invalid_argument("PerfMonitor: bound < base");
  if (faults_ != nullptr && faults_->plan().reprogram_delay_misses != 0) {
    PendingReprogram& p = pending_[idx];
    if (!p.active) ++pending_reprograms_;
    p = {.base = base,
         .bound = bound,
         .remaining = faults_->plan().reprogram_delay_misses,
         .active = true};
    faults_->note_reprogram_delayed();
    return;
  }
  counters_[idx] = {.base = base, .bound = bound, .count = 0, .enabled = true};
}

void PerfMonitor::tick_pending_reprograms() noexcept {
  for (unsigned i = 0; i < num_counters_; ++i) {
    PendingReprogram& p = pending_[i];
    if (!p.active) continue;
    if (--p.remaining != 0) continue;
    counters_[i] = {
        .base = p.base, .bound = p.bound, .count = 0, .enabled = true};
    p.active = false;
    --pending_reprograms_;
  }
}

void PerfMonitor::disable(unsigned idx) {
  check_index(idx);
  counters_[idx].enabled = false;
  if (pending_[idx].active) {
    pending_[idx].active = false;
    --pending_reprograms_;
  }
}

void PerfMonitor::clear(unsigned idx) {
  check_index(idx);
  counters_[idx].count = 0;
}

bool PerfMonitor::enabled(unsigned idx) const {
  check_index(idx);
  return counters_[idx].enabled;
}

std::uint64_t PerfMonitor::read(unsigned idx) const {
  check_index(idx);
  const std::uint64_t value = counters_[idx].count;
  if (faults_ != nullptr && faults_->perturbs_reads()) {
    return faults_->perturb_read(value);
  }
  return value;
}

AddrRange PerfMonitor::region(unsigned idx) const {
  check_index(idx);
  return {counters_[idx].base, counters_[idx].bound};
}

}  // namespace hpm::sim
