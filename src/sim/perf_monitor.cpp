#include "sim/perf_monitor.hpp"

#include <stdexcept>

namespace hpm::sim {

PerfMonitor::PerfMonitor(unsigned num_counters)
    : num_counters_(num_counters) {
  if (num_counters == 0 || num_counters > kMaxCounters) {
    throw std::invalid_argument("PerfMonitor: counter count out of range");
  }
}

void PerfMonitor::check_index(unsigned idx) const {
  if (idx >= num_counters_) {
    throw std::out_of_range("PerfMonitor: counter index out of range");
  }
}

void PerfMonitor::configure(unsigned idx, Addr base, Addr bound) {
  check_index(idx);
  if (bound < base) throw std::invalid_argument("PerfMonitor: bound < base");
  counters_[idx] = {.base = base, .bound = bound, .count = 0, .enabled = true};
}

void PerfMonitor::disable(unsigned idx) {
  check_index(idx);
  counters_[idx].enabled = false;
}

void PerfMonitor::clear(unsigned idx) {
  check_index(idx);
  counters_[idx].count = 0;
}

bool PerfMonitor::enabled(unsigned idx) const {
  check_index(idx);
  return counters_[idx].enabled;
}

std::uint64_t PerfMonitor::read(unsigned idx) const {
  check_index(idx);
  return counters_[idx].count;
}

AddrRange PerfMonitor::region(unsigned idx) const {
  check_index(idx);
  return {counters_[idx].base, counters_[idx].bound};
}

}  // namespace hpm::sim
