#include "sim/backing_store.hpp"

#include <algorithm>

namespace hpm::sim {

BackingStore::Page& BackingStore::ensure_page(Addr addr) {
  auto& slot = pages_[addr >> kPageBits];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

void BackingStore::read_bytes(Addr addr, void* out, std::uint64_t len) const {
  auto* dst = static_cast<std::uint8_t*>(out);
  while (len > 0) {
    const std::uint64_t in_page = addr & kPageMask;
    const std::uint64_t chunk = std::min(len, kPageSize - in_page);
    if (const Page* p = find_page(addr)) {
      std::memcpy(dst, p->data() + in_page, chunk);
    } else {
      std::memset(dst, 0, chunk);
    }
    addr += chunk;
    dst += chunk;
    len -= chunk;
  }
}

void BackingStore::write_bytes(Addr addr, const void* in, std::uint64_t len) {
  const auto* src = static_cast<const std::uint8_t*>(in);
  while (len > 0) {
    const std::uint64_t in_page = addr & kPageMask;
    const std::uint64_t chunk = std::min(len, kPageSize - in_page);
    Page& p = ensure_page(addr);
    std::memcpy(p.data() + in_page, src, chunk);
    addr += chunk;
    src += chunk;
    len -= chunk;
  }
}

void BackingStore::fill(Addr addr, std::uint8_t byte, std::uint64_t len) {
  while (len > 0) {
    const std::uint64_t in_page = addr & kPageMask;
    const std::uint64_t chunk = std::min(len, kPageSize - in_page);
    Page& p = ensure_page(addr);
    std::memset(p.data() + in_page, byte, chunk);
    addr += chunk;
    len -= chunk;
  }
}

}  // namespace hpm::sim
