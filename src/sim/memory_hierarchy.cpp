#include "sim/memory_hierarchy.hpp"

#include <bit>
#include <cctype>
#include <set>
#include <stdexcept>

namespace hpm::sim {
namespace {

LevelSnapshot snapshot_of(const std::string& name, const Cache& cache) {
  LevelSnapshot snap;
  snap.name = name;
  snap.size_bytes = cache.config().size_bytes;
  snap.line_size = cache.config().line_size;
  snap.associativity = cache.config().associativity;
  snap.accesses = cache.accesses();
  snap.hits = cache.hits();
  snap.misses = cache.misses();
  snap.writebacks = cache.writebacks();
  snap.resident_lines = cache.resident_lines();
  return snap;
}

void accumulate(LevelSnapshot& into, const Cache& cache) {
  into.accesses += cache.accesses();
  into.hits += cache.hits();
  into.misses += cache.misses();
  into.writebacks += cache.writebacks();
  into.resident_lines += cache.resident_lines();
}

}  // namespace

std::string_view coherence_event_name(CoherenceEventKind kind) noexcept {
  switch (kind) {
    case CoherenceEventKind::kInvalidation: return "invalidation";
    case CoherenceEventKind::kUpgrade: return "upgrade";
    case CoherenceEventKind::kForcedWriteback: return "forced_writeback";
    case CoherenceEventKind::kSharingTransition: return "sharing_transition";
  }
  return "unknown";
}

MemoryHierarchy::MemoryHierarchy(const std::vector<LevelConfig>& levels,
                                 std::size_t observe, unsigned cores,
                                 std::size_t shared_levels) {
  if (levels.empty()) {
    throw std::invalid_argument("MemoryHierarchy: at least one level");
  }
  if (observe == kObserveLast) observe = levels.size() - 1;
  if (observe >= levels.size()) {
    throw std::invalid_argument(
        "MemoryHierarchy: observation level " + std::to_string(observe) +
        " out of range for " + std::to_string(levels.size()) + " levels");
  }
  if (cores == 0) {
    throw std::invalid_argument("MemoryHierarchy: at least one core");
  }
  if (cores > 64) {
    throw std::invalid_argument(
        "MemoryHierarchy: at most 64 cores (directory sharer bitmask)");
  }
  observe_ = observe;
  num_levels_ = levels.size();
  cores_ = cores;
  names_.reserve(levels.size());
  std::set<std::string> seen;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const std::string name = levels[i].name.empty()
                                 ? "L" + std::to_string(i + 1)
                                 : levels[i].name;
    if (!seen.insert(name).second) {
      throw std::invalid_argument("MemoryHierarchy: duplicate level name '" +
                                  name + "'");
    }
    names_.push_back(name);
  }
  if (cores_ == 1) {
    // Single stream: one flat cache list, exactly the pre-multicore layout
    // (shared_from_ stays 0 so level(i) indexes caches_ directly).
    caches_.reserve(levels.size());
    for (const LevelConfig& level : levels) {
      caches_.emplace_back(level.cache);  // Cache ctor validates geometry
    }
    return;
  }
  if (shared_levels == 0) shared_levels = 1;
  if (shared_levels > levels.size()) shared_levels = levels.size();
  shared_from_ = levels.size() - shared_levels;
  caches_.reserve(shared_levels);
  for (std::size_t i = shared_from_; i < levels.size(); ++i) {
    caches_.emplace_back(levels[i].cache);
  }
  private_.resize(cores_);
  for (unsigned core = 0; core < cores_; ++core) {
    private_[core].reserve(shared_from_);
    for (std::size_t i = 0; i < shared_from_; ++i) {
      private_[core].emplace_back(levels[i].cache);
    }
  }
  coh_.assign(num_levels_, CoherenceStats{});
  if (shared_from_ > 0) {
    // Directory granularity: the innermost private level's line size.
    coherence_line_mask_ =
        ~static_cast<Addr>(levels[0].cache.line_size - 1);
  }
}

bool MemoryHierarchy::core_holds(unsigned core, Addr addr) const {
  for (const Cache& cache : private_[core]) {
    if (cache.probe(addr)) return true;
  }
  return false;
}

// A capacity eviction from one of `core`'s private levels may have removed
// the core's last private copy of the victim line; if so, the directory
// must forget the core (and, when the core owned the line Modified, the
// dirty state — the eviction itself wrote the data back).
void MemoryHierarchy::drop_victim(unsigned core, Addr victim_line) {
  const Addr line = victim_line & coherence_line_mask_;
  const auto it = directory_.find(line);
  if (it == directory_.end()) return;
  if (core_holds(core, victim_line)) return;
  DirEntry& entry = it->second;
  entry.sharers &= ~(1ULL << core);
  if (entry.dirty && entry.owner == core) entry.dirty = false;
  if (entry.sharers == 0) directory_.erase(it);
}

MemoryHierarchy::AccessOutcome MemoryHierarchy::access_mc(unsigned core,
                                                          Addr addr,
                                                          bool write) {
  std::vector<Cache>& priv = private_[core];
  const std::size_t num_private = priv.size();
  std::size_t hit_level = kMissedAll;
  victim_scratch_.clear();
  for (std::size_t j = 0; j < num_private; ++j) {
    const AccessResult result = priv[j].access(addr, write);
    if (result.evicted) victim_scratch_.push_back(result.victim_line);
    if (result.hit) {
      hit_level = j;
      break;
    }
  }
  if (hit_level == kMissedAll) {
    for (std::size_t k = 0; k < caches_.size(); ++k) {
      if (caches_[k].access(addr, write).hit) {
        hit_level = shared_from_ + k;
        break;
      }
    }
  }

  if (num_private > 0) {
    const Addr line = addr & coherence_line_mask_;
    const std::uint64_t self_bit = 1ULL << core;
    auto it = directory_.find(line);
    if (write) {
      if (it != directory_.end() &&
          (it->second.sharers & ~self_bit) != 0) {
        // The write hit a locally Shared line (bus upgrade) or fetched a
        // remotely held line for ownership; either way every remote
        // private copy is invalidated.
        const bool local_hit = hit_level < num_private;
        std::uint64_t remote = it->second.sharers & ~self_bit;
        while (remote != 0) {
          const unsigned holder =
              static_cast<unsigned>(std::countr_zero(remote));
          remote &= remote - 1;
          for (std::size_t j = 0; j < private_[holder].size(); ++j) {
            const Cache::SnoopResult snoop =
                private_[holder][j].invalidate(addr);
            if (!snoop.present) continue;
            ++coh_[j].invalidations_sent;
            ++coh_[j].invalidations_received;
            emit(core, addr, CoherenceEventKind::kInvalidation);
            if (snoop.was_dirty) {
              ++coh_[j].forced_writebacks;
              emit(core, addr, CoherenceEventKind::kForcedWriteback);
            }
          }
        }
        it->second.sharers &= self_bit;
        it->second.dirty = false;
        if (local_hit) {
          ++coh_[hit_level].upgrades;
          emit(core, addr, CoherenceEventKind::kUpgrade);
          // The upgrade is a bus transaction against the first shared
          // level, so shared accesses reconcile with private-outer-level
          // misses plus upgrades.
          if (!caches_.empty()) caches_[0].access(addr, true);
        }
      }
      if (core_holds(core, addr)) {
        DirEntry& entry = directory_[line];
        entry.sharers |= self_bit;
        entry.owner = core;
        // Modified only when some private level actually holds dirty data
        // (a write-through private stack leaves the line clean).
        entry.dirty = false;
        for (const Cache& cache : priv) {
          if (cache.probe_state(addr).was_dirty) {
            entry.dirty = true;
            break;
          }
        }
      }
    } else {
      if (it != directory_.end()) {
        DirEntry& entry = it->second;
        if (entry.dirty && entry.owner != core &&
            (entry.sharers & (1ULL << entry.owner)) != 0) {
          // Remote Modified copy: the owner supplies the data and
          // downgrades to Shared, forcing its dirty data out.
          for (std::size_t j = 0; j < private_[entry.owner].size(); ++j) {
            const Cache::SnoopResult snoop =
                private_[entry.owner][j].clean(addr);
            if (snoop.present && snoop.was_dirty) {
              ++coh_[j].forced_writebacks;
              emit(core, addr, CoherenceEventKind::kForcedWriteback);
            }
          }
          entry.dirty = false;
        }
      }
      if (core_holds(core, addr)) {
        DirEntry& entry = directory_[line];
        const bool newly_held = (entry.sharers & self_bit) == 0;
        const bool others_hold = (entry.sharers & ~self_bit) != 0;
        entry.sharers |= self_bit;
        if (newly_held && others_hold) {
          ++coh_[0].sharing_transitions;
          emit(core, addr, CoherenceEventKind::kSharingTransition);
        }
      }
    }
    for (const Addr victim : victim_scratch_) drop_victim(core, victim);
  }

  if (hit_level == kMissedAll) return {kMissedAll, true};
  return {hit_level, hit_level > observe_};
}

void MemoryHierarchy::flush() {
  for (Cache& cache : caches_) cache.flush();
  for (auto& core_caches : private_) {
    for (Cache& cache : core_caches) cache.flush();
  }
  directory_.clear();
}

std::vector<LevelSnapshot> MemoryHierarchy::snapshot() const {
  std::vector<LevelSnapshot> out;
  out.reserve(num_levels_);
  for (std::size_t i = 0; i < shared_from_; ++i) {
    LevelSnapshot snap = snapshot_of(names_[i], private_[0][i]);
    for (unsigned core = 1; core < cores_; ++core) {
      accumulate(snap, private_[core][i]);
    }
    out.push_back(std::move(snap));
  }
  for (std::size_t k = 0; k < caches_.size(); ++k) {
    out.push_back(snapshot_of(names_[shared_from_ + k], caches_[k]));
  }
  return out;
}

std::vector<LevelSnapshot> MemoryHierarchy::core_snapshot(
    unsigned core) const {
  std::vector<LevelSnapshot> out;
  out.reserve(num_levels_);
  for (std::size_t i = 0; i < shared_from_; ++i) {
    out.push_back(snapshot_of(names_[i], private_[core][i]));
  }
  for (std::size_t k = 0; k < caches_.size(); ++k) {
    out.push_back(snapshot_of(names_[shared_from_ + k], caches_[k]));
  }
  return out;
}

// -- Spec grammar -------------------------------------------------------------

std::uint64_t parse_size_bytes(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("size: empty");
  std::uint64_t multiplier = 1;
  std::string digits = text;
  const char suffix =
      static_cast<char>(std::tolower(static_cast<unsigned char>(text.back())));
  if (suffix == 'k' || suffix == 'm' || suffix == 'g') {
    multiplier = suffix == 'k' ? 1024ULL
                               : suffix == 'm' ? 1024ULL * 1024
                                               : 1024ULL * 1024 * 1024;
    digits = text.substr(0, text.size() - 1);
  }
  if (digits.empty()) throw std::invalid_argument("size: no digits in '" +
                                                  text + "'");
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      throw std::invalid_argument("size: bad character in '" + text + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value * multiplier;
}

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t at = text.find(sep, start);
    const std::size_t end = at == std::string::npos ? text.size() : at;
    out.push_back(text.substr(start, end - start));
    if (at == std::string::npos) break;
    start = at + 1;
  }
  return out;
}

}  // namespace

HierarchyConfig parse_hierarchy_spec(const std::string& spec) {
  HierarchyConfig config;
  for (const std::string& entry : split(spec, ',')) {
    if (entry.empty()) continue;
    const auto fields = split(entry, ':');
    if (fields.size() < 2 || fields.size() > 4 || fields[0].empty()) {
      throw std::invalid_argument(
          "level spec '" + entry +
          "': expected NAME:SIZE[:LINE[:ASSOC]] (e.g. L1:32k:64:2)");
    }
    LevelConfig level;
    level.name = fields[0];
    level.cache.size_bytes = parse_size_bytes(fields[1]);
    if (fields.size() > 2) {
      level.cache.line_size =
          static_cast<std::uint32_t>(parse_size_bytes(fields[2]));
    }
    if (fields.size() > 3) {
      level.cache.associativity =
          static_cast<std::uint32_t>(parse_size_bytes(fields[3]));
    }
    if (!level.cache.valid()) {
      throw std::invalid_argument("level spec '" + entry +
                                  "': size, line size and set count must be "
                                  "powers of two");
    }
    config.levels.push_back(std::move(level));
  }
  if (config.levels.empty()) {
    throw std::invalid_argument("level spec '" + spec + "': no levels");
  }
  return config;
}

std::string format_size_bytes(std::uint64_t bytes) {
  constexpr std::uint64_t kGib = 1024ULL * 1024 * 1024;
  constexpr std::uint64_t kMib = 1024ULL * 1024;
  if (bytes >= kGib && bytes % kGib == 0) {
    return std::to_string(bytes / kGib) + "g";
  }
  if (bytes >= kMib && bytes % kMib == 0) {
    return std::to_string(bytes / kMib) + "m";
  }
  if (bytes >= 1024 && bytes % 1024 == 0) {
    return std::to_string(bytes / 1024) + "k";
  }
  return std::to_string(bytes);
}

std::string format_hierarchy_spec(const std::vector<LevelConfig>& levels) {
  std::string out;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) out += ',';
    const LevelConfig& level = levels[i];
    out += level.name.empty() ? "L" + std::to_string(i + 1) : level.name;
    out += ':';
    out += format_size_bytes(level.cache.size_bytes);
    out += ':';
    out += std::to_string(level.cache.line_size);
    out += ':';
    out += std::to_string(level.cache.associativity);
  }
  return out;
}

std::string format_hierarchy_spec(const HierarchyConfig& config) {
  return format_hierarchy_spec(config.levels);
}

const std::vector<std::string>& hierarchy_preset_names() {
  static const std::vector<std::string> names = {"paper", "2level", "3level"};
  return names;
}

bool hierarchy_preset(const std::string& name, HierarchyConfig& out) {
  auto level = [](std::string label, std::uint64_t size,
                  std::uint32_t assoc) {
    LevelConfig config;
    config.name = std::move(label);
    config.cache.size_bytes = size;
    config.cache.line_size = 64;
    config.cache.associativity = assoc;
    return config;
  };
  if (name == "paper" || name == "single") {
    out = HierarchyConfig{{level("LLC", 2ULL * 1024 * 1024, 8)}, kObserveLast};
    return true;
  }
  if (name == "2level") {
    out = HierarchyConfig{{level("L1", 32 * 1024, 2),
                           level("LLC", 2ULL * 1024 * 1024, 8)},
                          kObserveLast};
    return true;
  }
  if (name == "3level") {
    out = HierarchyConfig{{level("L1", 32 * 1024, 2),
                           level("L2", 256 * 1024, 8),
                           level("LLC", 2ULL * 1024 * 1024, 8)},
                          kObserveLast};
    return true;
  }
  return false;
}

std::vector<LevelConfig> resolve_levels(const HierarchyConfig& config,
                                        const CacheConfig& fallback) {
  if (config.levels.empty()) {
    LevelConfig single;
    single.name = "L1";
    single.cache = fallback;
    return {single};
  }
  std::vector<LevelConfig> levels = config.levels;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i].name.empty()) levels[i].name = "L" + std::to_string(i + 1);
  }
  return levels;
}

std::size_t resolve_observe_level(const HierarchyConfig& config,
                                  std::size_t num_levels) {
  return config.observe_level == kObserveLast ? num_levels - 1
                                              : config.observe_level;
}

}  // namespace hpm::sim
