#include "sim/memory_hierarchy.hpp"

#include <cctype>
#include <set>
#include <stdexcept>

namespace hpm::sim {

MemoryHierarchy::MemoryHierarchy(const std::vector<LevelConfig>& levels,
                                 std::size_t observe) {
  if (levels.empty()) {
    throw std::invalid_argument("MemoryHierarchy: at least one level");
  }
  if (observe == kObserveLast) observe = levels.size() - 1;
  if (observe >= levels.size()) {
    throw std::invalid_argument(
        "MemoryHierarchy: observation level " + std::to_string(observe) +
        " out of range for " + std::to_string(levels.size()) + " levels");
  }
  observe_ = observe;
  caches_.reserve(levels.size());
  names_.reserve(levels.size());
  std::set<std::string> seen;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelConfig& level = levels[i];
    const std::string name =
        level.name.empty() ? "L" + std::to_string(i + 1) : level.name;
    if (!seen.insert(name).second) {
      throw std::invalid_argument("MemoryHierarchy: duplicate level name '" +
                                  name + "'");
    }
    caches_.emplace_back(level.cache);  // Cache ctor validates the geometry
    names_.push_back(name);
  }
}

void MemoryHierarchy::flush() {
  for (Cache& cache : caches_) cache.flush();
}

std::vector<LevelSnapshot> MemoryHierarchy::snapshot() const {
  std::vector<LevelSnapshot> out;
  out.reserve(caches_.size());
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    const Cache& cache = caches_[i];
    LevelSnapshot snap;
    snap.name = names_[i];
    snap.size_bytes = cache.config().size_bytes;
    snap.line_size = cache.config().line_size;
    snap.associativity = cache.config().associativity;
    snap.accesses = cache.accesses();
    snap.hits = cache.hits();
    snap.misses = cache.misses();
    snap.writebacks = cache.writebacks();
    snap.resident_lines = cache.resident_lines();
    out.push_back(std::move(snap));
  }
  return out;
}

// -- Spec grammar -------------------------------------------------------------

std::uint64_t parse_size_bytes(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("size: empty");
  std::uint64_t multiplier = 1;
  std::string digits = text;
  const char suffix =
      static_cast<char>(std::tolower(static_cast<unsigned char>(text.back())));
  if (suffix == 'k' || suffix == 'm' || suffix == 'g') {
    multiplier = suffix == 'k' ? 1024ULL
                               : suffix == 'm' ? 1024ULL * 1024
                                               : 1024ULL * 1024 * 1024;
    digits = text.substr(0, text.size() - 1);
  }
  if (digits.empty()) throw std::invalid_argument("size: no digits in '" +
                                                  text + "'");
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      throw std::invalid_argument("size: bad character in '" + text + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value * multiplier;
}

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t at = text.find(sep, start);
    const std::size_t end = at == std::string::npos ? text.size() : at;
    out.push_back(text.substr(start, end - start));
    if (at == std::string::npos) break;
    start = at + 1;
  }
  return out;
}

}  // namespace

HierarchyConfig parse_hierarchy_spec(const std::string& spec) {
  HierarchyConfig config;
  for (const std::string& entry : split(spec, ',')) {
    if (entry.empty()) continue;
    const auto fields = split(entry, ':');
    if (fields.size() < 2 || fields.size() > 4 || fields[0].empty()) {
      throw std::invalid_argument(
          "level spec '" + entry +
          "': expected NAME:SIZE[:LINE[:ASSOC]] (e.g. L1:32k:64:2)");
    }
    LevelConfig level;
    level.name = fields[0];
    level.cache.size_bytes = parse_size_bytes(fields[1]);
    if (fields.size() > 2) {
      level.cache.line_size =
          static_cast<std::uint32_t>(parse_size_bytes(fields[2]));
    }
    if (fields.size() > 3) {
      level.cache.associativity =
          static_cast<std::uint32_t>(parse_size_bytes(fields[3]));
    }
    if (!level.cache.valid()) {
      throw std::invalid_argument("level spec '" + entry +
                                  "': size, line size and set count must be "
                                  "powers of two");
    }
    config.levels.push_back(std::move(level));
  }
  if (config.levels.empty()) {
    throw std::invalid_argument("level spec '" + spec + "': no levels");
  }
  return config;
}

std::string format_size_bytes(std::uint64_t bytes) {
  constexpr std::uint64_t kGib = 1024ULL * 1024 * 1024;
  constexpr std::uint64_t kMib = 1024ULL * 1024;
  if (bytes >= kGib && bytes % kGib == 0) {
    return std::to_string(bytes / kGib) + "g";
  }
  if (bytes >= kMib && bytes % kMib == 0) {
    return std::to_string(bytes / kMib) + "m";
  }
  if (bytes >= 1024 && bytes % 1024 == 0) {
    return std::to_string(bytes / 1024) + "k";
  }
  return std::to_string(bytes);
}

std::string format_hierarchy_spec(const std::vector<LevelConfig>& levels) {
  std::string out;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) out += ',';
    const LevelConfig& level = levels[i];
    out += level.name.empty() ? "L" + std::to_string(i + 1) : level.name;
    out += ':';
    out += format_size_bytes(level.cache.size_bytes);
    out += ':';
    out += std::to_string(level.cache.line_size);
    out += ':';
    out += std::to_string(level.cache.associativity);
  }
  return out;
}

std::string format_hierarchy_spec(const HierarchyConfig& config) {
  return format_hierarchy_spec(config.levels);
}

const std::vector<std::string>& hierarchy_preset_names() {
  static const std::vector<std::string> names = {"paper", "2level", "3level"};
  return names;
}

bool hierarchy_preset(const std::string& name, HierarchyConfig& out) {
  auto level = [](std::string label, std::uint64_t size,
                  std::uint32_t assoc) {
    LevelConfig config;
    config.name = std::move(label);
    config.cache.size_bytes = size;
    config.cache.line_size = 64;
    config.cache.associativity = assoc;
    return config;
  };
  if (name == "paper" || name == "single") {
    out = HierarchyConfig{{level("LLC", 2ULL * 1024 * 1024, 8)}, kObserveLast};
    return true;
  }
  if (name == "2level") {
    out = HierarchyConfig{{level("L1", 32 * 1024, 2),
                           level("LLC", 2ULL * 1024 * 1024, 8)},
                          kObserveLast};
    return true;
  }
  if (name == "3level") {
    out = HierarchyConfig{{level("L1", 32 * 1024, 2),
                           level("L2", 256 * 1024, 8),
                           level("LLC", 2ULL * 1024 * 1024, 8)},
                          kObserveLast};
    return true;
  }
  return false;
}

std::vector<LevelConfig> resolve_levels(const HierarchyConfig& config,
                                        const CacheConfig& fallback) {
  if (config.levels.empty()) {
    LevelConfig single;
    single.name = "L1";
    single.cache = fallback;
    return {single};
  }
  std::vector<LevelConfig> levels = config.levels;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i].name.empty()) levels[i].name = "L" + std::to_string(i + 1);
  }
  return levels;
}

std::size_t resolve_observe_level(const HierarchyConfig& config,
                                  std::size_t num_levels) {
  return config.observe_level == kObserveLast ? num_levels - 1
                                              : config.observe_level;
}

}  // namespace hpm::sim
