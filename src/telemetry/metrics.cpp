#include "telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpm::telemetry {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be strictly ascending");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double value) noexcept {
  // First bucket whose upper bound is >= value; past-the-end = overflow.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

namespace {

template <typename Instrument>
Instrument* find_by_name(const std::vector<std::string>& names,
                         std::deque<Instrument>& instruments,
                         std::string_view name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return &instruments[i];
  }
  return nullptr;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  if (Counter* found = find_by_name(counter_names_, counters_, name)) {
    return *found;
  }
  counter_names_.emplace_back(name);
  return counters_.emplace_back();
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (Gauge* found = find_by_name(gauge_names_, gauges_, name)) {
    return *found;
  }
  gauge_names_.emplace_back(name);
  return gauges_.emplace_back();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  if (Histogram* found =
          find_by_name(histogram_names_, histograms_, name)) {
    return *found;
  }
  histogram_names_.emplace_back(name);
  return histograms_.emplace_back(std::move(bounds));
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_by_name(counter_names_,
                      const_cast<std::deque<Counter>&>(counters_), name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_by_name(gauge_names_,
                      const_cast<std::deque<Gauge>&>(gauges_), name);
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  return find_by_name(histogram_names_,
                      const_cast<std::deque<Histogram>&>(histograms_), name);
}

}  // namespace hpm::telemetry
