// Topology-aware monitor tree: the observability spine for live counter
// streaming and — once multi-core lands — per-core rollups.
//
// A MonitorTree mirrors the system topology (batch → run → machine →
// hierarchy level; a future per-core tier slots in as one more level of
// children).  Each node carries named metrics fed with *cumulative* raw
// counter values; sample() reduces them into windowed values with a
// pluggable reducer per metric and rolls identically-named metrics up
// bottom-to-top, the way NicolasDenoyelle/Hierarchical-monitors aggregates
// per-level monitors from their children.
//
// Everything here is deterministic: children and metrics iterate in
// insertion order, reductions are pure functions of the input sequence,
// and no wall-clock time is read — so a live stream produced at --jobs N
// is byte-identical (modulo line interleaving) to the --jobs 1 stream.
//
// This layer is pure (no JSON, no I/O dependencies beyond <ostream> for
// the OpenMetrics writer); the hpm.live.v1 wire encoding lives in
// harness/live_stream.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hpm::telemetry {

/// How a metric's windowed value is derived from its cumulative inputs
/// (leaves) or from identically-named child metrics (interior nodes).
enum class Reducer : std::uint8_t {
  kSum,    ///< value = cumulative input; window = delta since last sample
  kDelta,  ///< value = window = delta since last sample
  kEma,    ///< value = EMA of per-window deltas (rate smoothing)
  kMax,    ///< value = running max of inputs; rollup takes max over children
};

[[nodiscard]] std::string_view reducer_name(Reducer reducer) noexcept;

class MonitorNode {
 public:
  /// One named, reduced counter on a node.
  struct Metric {
    std::string name;
    Reducer reducer = Reducer::kSum;
    double alpha = 0.25;  ///< EMA smoothing (kEma and ratio metrics)
    double scale = 1.0;   ///< ratio metrics: value = num/den * scale
    bool is_ratio = false;
    std::string numerator;    ///< ratio only: sibling metric names
    std::string denominator;  ///< ratio only
    double raw = 0.0;         ///< latest cumulative input
    double last_raw = 0.0;    ///< raw at the previous sample
    double window = 0.0;      ///< reduced per-window quantity
    double value = 0.0;       ///< reduced value (see Reducer)
    bool primed = false;      ///< has at least one sample landed?
  };

  MonitorNode(std::string name, std::string kind)
      : name_(std::move(name)), kind_(std::move(kind)) {}
  MonitorNode(const MonitorNode&) = delete;
  MonitorNode& operator=(const MonitorNode&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& kind() const noexcept { return kind_; }

  /// Find-or-create a child node.  Children keep insertion order; a child
  /// is identified by name alone (the kind of an existing child wins).
  MonitorNode& child(std::string_view name, std::string_view kind);
  /// Find an existing child; nullptr when absent.
  [[nodiscard]] const MonitorNode* find_child(
      std::string_view name) const noexcept;

  /// Declare a metric (find-or-create; the first declaration's reducer and
  /// alpha win).  Metrics keep declaration order.
  Metric& metric(std::string_view name, Reducer reducer,
                 double alpha = 0.25);
  /// Declare a derived ratio metric: after every sample, window and value
  /// are numerator.window / denominator.window * scale, EMA-smoothed into
  /// `value` with `alpha`.  Rollup nodes recompute the ratio from their own
  /// aggregated numerator/denominator — child ratios are never summed.
  Metric& ratio(std::string_view name, std::string_view numerator,
                std::string_view denominator, double scale = 1.0,
                double alpha = 0.25);

  /// Feed the latest *cumulative* raw value (monotone for kSum/kDelta/kEma;
  /// kMax takes any sequence).  The metric must have been declared.
  void input(std::string_view name, double cumulative);

  /// Lookup after sample(); nullptr when the metric does not exist.
  [[nodiscard]] const Metric* find(std::string_view name) const noexcept;

  [[nodiscard]] const std::vector<std::unique_ptr<MonitorNode>>& children()
      const noexcept {
    return children_;
  }
  [[nodiscard]] const std::vector<Metric>& metrics() const noexcept {
    return metrics_;
  }

 private:
  friend class MonitorTree;
  void sample();  ///< post-order: reduce leaves, then roll children up
  Metric& find_or_create(std::string_view name, Reducer reducer,
                         double alpha);

  std::string name_;
  std::string kind_;
  std::vector<Metric> metrics_;
  std::vector<std::unique_ptr<MonitorNode>> children_;
};

/// The tree: a root node plus a sample counter.  sample() visits the whole
/// topology bottom-to-top, so after it returns every interior node's
/// metrics reflect its subtree.
class MonitorTree {
 public:
  MonitorTree(std::string root_name, std::string root_kind)
      : root_(std::move(root_name), std::move(root_kind)) {}

  [[nodiscard]] MonitorNode& root() noexcept { return root_; }
  [[nodiscard]] const MonitorNode& root() const noexcept { return root_; }

  void sample() {
    root_.sample();
    ++samples_;
  }
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

 private:
  MonitorNode root_;
  std::uint64_t samples_ = 0;
};

/// OpenMetrics-style text exposition of the tree's current values — one
/// gauge family, one sample per (node, metric), labelled with the node's
/// slash-joined path, kind and reducer.  Deterministic: iteration follows
/// insertion order and doubles render in shortest round-trip form.
void write_openmetrics(std::ostream& out, const MonitorTree& tree);

}  // namespace hpm::telemetry
