#include "telemetry/timeline.hpp"

#include <stdexcept>

namespace hpm::telemetry {

PhaseTimeline::PhaseTimeline(sim::Cycles every, std::size_t capacity)
    : every_(every), capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("PhaseTimeline: capacity must be > 0");
  }
  ring_.reserve(capacity_);
}

void PhaseTimeline::watch_hierarchy(const sim::MemoryHierarchy* hierarchy) {
  if (hierarchy != nullptr && hierarchy->num_levels() <= 1) hierarchy = nullptr;
  hierarchy_ = hierarchy;
  last_level_misses_.assign(
      hierarchy_ != nullptr ? hierarchy_->num_levels() : 0, 0);
}

void PhaseTimeline::snapshot(const sim::MachineStats& stats) {
  PhaseSample sample;
  sample.at = stats.total_cycles();
  sample.app_instructions = stats.app_instructions - last_.app_instructions;
  sample.app_refs = stats.app_refs - last_.app_refs;
  sample.app_misses = stats.app_misses - last_.app_misses;
  sample.tool_refs = stats.tool_refs - last_.tool_refs;
  sample.tool_misses = stats.tool_misses - last_.tool_misses;
  sample.interrupts = stats.interrupts - last_.interrupts;
  sample.app_cycles = stats.app_cycles - last_.app_cycles;
  sample.tool_cycles = stats.tool_cycles - last_.tool_cycles;
  if (hierarchy_ != nullptr) {
    const std::size_t n = hierarchy_->num_levels();
    sample.level_misses.resize(n);
    sample.level_resident.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t misses = hierarchy_->level(i).misses();
      sample.level_misses[i] = misses - last_level_misses_[i];
      last_level_misses_[i] = misses;
      sample.level_resident[i] = hierarchy_->level(i).resident_lines();
    }
  }
  last_ = stats;
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(sample);
    return;
  }
  ring_[head_] = sample;
  head_ = (head_ + 1) % capacity_;
}

std::vector<PhaseSample> PhaseTimeline::samples() const {
  std::vector<PhaseSample> out;
  out.reserve(ring_.size());
  // Before wraparound head_ is 0 and this is a straight copy; after, the
  // oldest surviving slice sits at head_.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

}  // namespace hpm::telemetry
