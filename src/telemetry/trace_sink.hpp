// Structured event sink: typed trace events from inside the simulator.
//
// Emitters (core::Sampler, core::NWaySearch, sim-level interrupt hooks,
// harness::BatchRunner) construct TraceEvents only when a sink is
// installed, so the disabled path costs one pointer test.  Two backends:
//   * ChromeTraceSink — the Chrome trace_event JSON array format, loadable
//     in chrome://tracing and https://ui.perfetto.dev.  Virtual cycles map
//     onto the "ts"/"dur" microsecond fields 1:1 (1 cycle = 1 us on the
//     viewer's axis).
//   * JsonlTraceSink — one compact JSON object per line, for grep/jq and
//     for streaming consumers that do not want a trailing-footer format.
//
// Both backends serialize identically-keyed objects and are internally
// mutex-guarded, so a single sink may be shared across batch workers.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hpm::telemetry {

/// One typed argument of a trace event.  Keys are expected to be string
/// literals (they are not copied into owned storage).
struct TraceArg {
  enum class Kind : std::uint8_t { kUint, kInt, kDouble, kString };

  TraceArg(std::string_view k, std::uint64_t v)
      : key(k), kind(Kind::kUint), uint_value(v) {}
  TraceArg(std::string_view k, std::int64_t v)
      : key(k), kind(Kind::kInt), int_value(v) {}
  TraceArg(std::string_view k, double v)
      : key(k), kind(Kind::kDouble), double_value(v) {}
  TraceArg(std::string_view k, std::string v)
      : key(k), kind(Kind::kString), string_value(std::move(v)) {}

  std::string_view key;
  Kind kind;
  std::uint64_t uint_value = 0;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
};

/// Chrome trace_event phases used here: 'B'/'E' duration begin/end,
/// 'X' complete (with dur), 'i' instant, 'C' counter.
struct TraceEvent {
  std::string_view category;
  std::string_view name;
  char phase = 'i';
  std::uint64_t ts = 0;   ///< virtual cycles (or host us for batch events)
  std::uint64_t dur = 0;  ///< 'X' only
  std::uint32_t pid = 0;  ///< 0 = simulator; 1 = batch/harness plane
  std::uint32_t tid = 0;  ///< run index / worker id
  std::vector<TraceArg> args;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void event(const TraceEvent& event) = 0;
};

/// Serialize one event as a compact JSON object with a fixed key order
/// (name, cat, ph, ts[, dur], pid, tid[, args]).  Shared by both backends
/// and by the golden-snippet test.
void write_event_json(std::ostream& out, const TraceEvent& event);

/// Chrome trace_event JSON: {"traceEvents":[...]}.  The footer is written
/// by close() (or the destructor); the stream must outlive the sink.
class ChromeTraceSink : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& out);
  ~ChromeTraceSink() override;

  void event(const TraceEvent& event) override;
  /// Write the closing "]}"; further events are discarded.  Idempotent.
  void close();

 private:
  std::mutex mutex_;
  std::ostream& out_;
  bool any_ = false;
  bool closed_ = false;
};

/// One JSON object per line; no header or footer.
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(out) {}

  void event(const TraceEvent& event) override;

 private:
  std::mutex mutex_;
  std::ostream& out_;
};

/// Scoped self-profiling span: measures host wall time of a harness phase
/// (simulate / collect / export / analysis) and emits one 'X' complete
/// event on pid 2 (the self-profiling plane) when it goes out of scope.
/// Timestamps are host microseconds relative to a process-wide epoch, so
/// spans from every run and the exporters line up on one axis in
/// chrome://tracing.  A null sink makes the span free apart from two
/// pointer tests.
class WallSpan {
 public:
  WallSpan(TraceSink* sink, std::string_view name, std::uint32_t tid = 0);
  ~WallSpan();
  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

  /// Microseconds since the process-wide span epoch (first use).
  [[nodiscard]] static std::uint64_t now_us();

 private:
  TraceSink* sink_;
  std::string_view name_;  ///< expected to be a string literal
  std::uint32_t tid_;
  std::uint64_t start_us_ = 0;
};

/// Counts events instead of serializing them — for tests and for cheap
/// "how chatty was this run" diagnostics.
class CountingTraceSink : public TraceSink {
 public:
  void event(const TraceEvent& event) override;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count(std::string_view category,
                                    std::string_view name) const;

 private:
  std::mutex mutex_;
  std::uint64_t total_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> by_key_;
};

}  // namespace hpm::telemetry
