// Shared quantile / latency-summary helpers.
//
// One definition of "p50/p95/p99" for the whole tree: the server's
// observability plane (src/serve/observe.*), serve_loadgen's client-side
// report and the saturation bench all call these, so a latency the server
// exposes and a latency the client prints are computed identically and can
// be compared number-for-number.
//
// The quantile definition is nearest-rank with rounding — for a sorted
// sample of n values, q in [0,1] selects index round(q * (n-1)) — the
// historical serve_loadgen definition, kept so existing summary numbers do
// not shift.  It is exact at the endpoints (q=0 -> min, q=1 -> max) and
// needs no interpolation, so summaries stay deterministic across
// platforms.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hpm::telemetry {

/// Nearest-rank quantile of an ALREADY SORTED ascending sample; q in
/// [0,1].  Empty input yields 0.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Convenience: copies, sorts, then quantile_sorted.
[[nodiscard]] double quantile(std::span<const double> samples, double q);

/// The standard latency digest every surface reports.
struct LatencySummary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Summarize a sample set (copies and sorts internally; empty-safe).
[[nodiscard]] LatencySummary summarize_latencies(
    std::span<const double> samples);

/// Bounded sample recorder: keeps the most recent `capacity` observations
/// (ring buffer), for always-on latency tracking with fixed memory.  Not
/// thread-safe — callers serialize externally (the server monitor holds
/// one mutex over all of its windows).
class SampleWindow {
 public:
  explicit SampleWindow(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(double sample);

  /// Total observations ever recorded (may exceed size()).
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Observations currently retained.
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

  /// Digest of the retained window; `count` is total(), so counters keep
  /// their meaning even after the ring starts evicting.
  [[nodiscard]] LatencySummary summary() const;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< ring write position once full
  std::size_t total_ = 0;
  std::vector<double> samples_;
};

}  // namespace hpm::telemetry
