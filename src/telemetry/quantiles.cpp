#include "telemetry/quantiles.hpp"

#include <algorithm>

namespace hpm::telemetry {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

double quantile(std::span<const double> samples, double q) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

LatencySummary summarize_latencies(std::span<const double> samples) {
  LatencySummary summary;
  if (samples.empty()) return summary;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  summary.count = sorted.size();
  summary.min = sorted.front();
  summary.max = sorted.back();
  double sum = 0.0;
  for (const double sample : sorted) sum += sample;
  summary.mean = sum / static_cast<double>(sorted.size());
  summary.p50 = quantile_sorted(sorted, 0.50);
  summary.p95 = quantile_sorted(sorted, 0.95);
  summary.p99 = quantile_sorted(sorted, 0.99);
  return summary;
}

void SampleWindow::record(double sample) {
  ++total_;
  if (capacity_ == 0) return;
  if (samples_.size() < capacity_) {
    samples_.push_back(sample);
    return;
  }
  samples_[next_] = sample;
  next_ = (next_ + 1) % capacity_;
}

LatencySummary SampleWindow::summary() const {
  LatencySummary summary = summarize_latencies(samples_);
  summary.count = total_;
  return summary;
}

}  // namespace hpm::telemetry
