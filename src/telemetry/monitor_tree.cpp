#include "telemetry/monitor_tree.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace hpm::telemetry {
namespace {

/// Shortest round-trip double rendering (matches the JSON exporter's
/// discipline so streamed and exposed values agree byte-for-byte).
void append_double(std::string& out, double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) {
    out += "0";
    return;
  }
  out.append(buf, ptr);
}

/// OpenMetrics label values: escape backslash, double quote and newline.
std::string escape_label(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

void write_node(std::ostream& out, const MonitorNode& node,
                const std::string& path) {
  for (const MonitorNode::Metric& metric : node.metrics()) {
    std::string line = "hpm_monitor{node=\"";
    line += escape_label(path);
    line += "\",kind=\"";
    line += escape_label(node.kind());
    line += "\",metric=\"";
    line += escape_label(metric.name);
    line += "\",reducer=\"";
    line += metric.is_ratio ? "ratio" : reducer_name(metric.reducer);
    line += "\"} ";
    append_double(line, metric.value);
    out << line << '\n';
  }
  for (const auto& child : node.children()) {
    write_node(out, *child, path + "/" + child->name());
  }
}

}  // namespace

std::string_view reducer_name(Reducer reducer) noexcept {
  switch (reducer) {
    case Reducer::kSum: return "sum";
    case Reducer::kDelta: return "delta";
    case Reducer::kEma: return "ema";
    case Reducer::kMax: return "max";
  }
  return "sum";
}

MonitorNode& MonitorNode::child(std::string_view name, std::string_view kind) {
  for (const auto& existing : children_) {
    if (existing->name() == name) return *existing;
  }
  children_.push_back(
      std::make_unique<MonitorNode>(std::string(name), std::string(kind)));
  return *children_.back();
}

const MonitorNode* MonitorNode::find_child(
    std::string_view name) const noexcept {
  for (const auto& existing : children_) {
    if (existing->name() == name) return existing.get();
  }
  return nullptr;
}

MonitorNode::Metric& MonitorNode::find_or_create(std::string_view name,
                                                 Reducer reducer,
                                                 double alpha) {
  for (Metric& metric : metrics_) {
    if (metric.name == name) return metric;
  }
  Metric metric;
  metric.name = std::string(name);
  metric.reducer = reducer;
  metric.alpha = alpha;
  metrics_.push_back(std::move(metric));
  return metrics_.back();
}

MonitorNode::Metric& MonitorNode::metric(std::string_view name,
                                         Reducer reducer, double alpha) {
  return find_or_create(name, reducer, alpha);
}

MonitorNode::Metric& MonitorNode::ratio(std::string_view name,
                                        std::string_view numerator,
                                        std::string_view denominator,
                                        double scale, double alpha) {
  Metric& metric = find_or_create(name, Reducer::kEma, alpha);
  metric.is_ratio = true;
  metric.numerator = std::string(numerator);
  metric.denominator = std::string(denominator);
  metric.scale = scale;
  return metric;
}

void MonitorNode::input(std::string_view name, double cumulative) {
  for (Metric& metric : metrics_) {
    if (metric.name == name) {
      metric.raw = cumulative;
      return;
    }
  }
  throw std::invalid_argument("monitor metric not declared: " +
                              std::string(name));
}

const MonitorNode::Metric* MonitorNode::find(
    std::string_view name) const noexcept {
  for (const Metric& metric : metrics_) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

void MonitorNode::sample() {
  // Post-order: children first, so rollup sees their freshly reduced
  // values.
  for (const auto& node : children_) node->sample();

  // Adopt metric declarations from children that this node lacks — the
  // rollup topology is therefore implicit: declare metrics on leaves and
  // every ancestor aggregates them.  Ratio declarations propagate too and
  // are recomputed per node from the node's own aggregated inputs.
  for (const auto& node : children_) {
    for (const Metric& theirs : node->metrics_) {
      Metric& mine = find_or_create(theirs.name, theirs.reducer, theirs.alpha);
      if (theirs.is_ratio && !mine.is_ratio) {
        mine.is_ratio = true;
        mine.numerator = theirs.numerator;
        mine.denominator = theirs.denominator;
        mine.scale = theirs.scale;
      }
    }
  }

  for (Metric& metric : metrics_) {
    if (metric.is_ratio) continue;  // derived below, after inputs settle
    bool rolled_up = false;
    double agg_value = 0.0;
    double agg_window = 0.0;
    for (const auto& node : children_) {
      const Metric* theirs = node->find(metric.name);
      if (theirs == nullptr || theirs->is_ratio) continue;
      if (!rolled_up) {
        agg_value = theirs->value;
        agg_window = theirs->window;
        rolled_up = true;
        continue;
      }
      if (metric.reducer == Reducer::kMax) {
        agg_value = std::max(agg_value, theirs->value);
        agg_window = std::max(agg_window, theirs->window);
      } else {
        agg_value += theirs->value;
        agg_window += theirs->window;
      }
    }
    if (rolled_up) {
      // Interior node: the subtree is authoritative; any direct input on
      // this node is ignored for the shared metric name.
      metric.value = agg_value;
      metric.window = agg_window;
      metric.primed = true;
      continue;
    }
    switch (metric.reducer) {
      case Reducer::kSum:
        metric.window = metric.raw - metric.last_raw;
        metric.value = metric.raw;
        break;
      case Reducer::kDelta:
        metric.window = metric.raw - metric.last_raw;
        metric.value = metric.window;
        break;
      case Reducer::kEma:
        metric.window = metric.raw - metric.last_raw;
        metric.value = metric.primed ? metric.alpha * metric.window +
                                           (1.0 - metric.alpha) * metric.value
                                     : metric.window;
        break;
      case Reducer::kMax:
        metric.window = metric.raw;
        metric.value =
            metric.primed ? std::max(metric.value, metric.raw) : metric.raw;
        break;
    }
    metric.last_raw = metric.raw;
    metric.primed = true;
  }

  for (Metric& metric : metrics_) {
    if (!metric.is_ratio) continue;
    const Metric* num = find(metric.numerator);
    const Metric* den = find(metric.denominator);
    const double d = den != nullptr ? den->window : 0.0;
    metric.window =
        (num != nullptr && d != 0.0) ? num->window / d * metric.scale : 0.0;
    metric.value = metric.primed ? metric.alpha * metric.window +
                                       (1.0 - metric.alpha) * metric.value
                                 : metric.window;
    metric.primed = true;
  }
}

void write_openmetrics(std::ostream& out, const MonitorTree& tree) {
  out << "# HELP hpm_monitor Monitor-tree metric values (windowed "
         "reduction, rolled up bottom-to-top).\n"
      << "# TYPE hpm_monitor gauge\n";
  write_node(out, tree.root(), tree.root().name());
  out << "# EOF\n";
}

}  // namespace hpm::telemetry
