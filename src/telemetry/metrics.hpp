// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// The registry is the numeric half of hpm::telemetry (the structured event
// half is trace_sink.hpp).  Design constraints, in order:
//   * zero cost when disabled — call sites hold a `Counter*` that is null
//     when telemetry is off, so the disabled path is one pointer test;
//   * deterministic export — instruments are iterated in registration
//     order, never hash order, so two runs of the same spec produce
//     byte-identical metric blocks (the batch determinism contract);
//   * stable addresses — instruments live in deques; a `Counter&` obtained
//     at tool start() stays valid for the registry's lifetime.
//
// A registry belongs to exactly one simulated run and is not thread-safe;
// parallel batch runs each own their own (shared-nothing, like Machine).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace hpm::telemetry {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  void add(std::uint64_t delta) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with inclusive upper bounds (Prometheus "le"
/// convention): a sample lands in the first bucket whose bound is >= the
/// value, or in the implicit overflow bucket past the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name.  References stay valid for the registry's
  /// lifetime (instruments are deque-backed and never erased).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is used only on first creation; a later lookup of an
  /// existing histogram ignores it.  Bounds must be strictly ascending.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Lookup without creation; nullptr when the name is unknown.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  // Iteration in registration order (deterministic export).
  template <typename Fn>  // Fn(const std::string& name, const Counter&)
  void for_each_counter(Fn&& fn) const {
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      fn(counter_names_[i], counters_[i]);
    }
  }
  template <typename Fn>  // Fn(const std::string& name, const Gauge&)
  void for_each_gauge(Fn&& fn) const {
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
      fn(gauge_names_[i], gauges_[i]);
    }
  }
  template <typename Fn>  // Fn(const std::string& name, const Histogram&)
  void for_each_histogram(Fn&& fn) const {
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
      fn(histogram_names_[i], histograms_[i]);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // Linear name scans: a run registers a few dozen instruments once at
  // tool start; lookup is not on any hot path (call sites cache pointers).
  std::vector<std::string> counter_names_;
  std::deque<Counter> counters_;
  std::vector<std::string> gauge_names_;
  std::deque<Gauge> gauges_;
  std::vector<std::string> histogram_names_;
  std::deque<Histogram> histograms_;
};

}  // namespace hpm::telemetry
