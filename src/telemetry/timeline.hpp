// Phase-sliced machine time series.
//
// The paper's phase results (Figure 5, §3.5) show that end-of-run
// aggregates hide everything interesting about workloads like su2cor or
// applu: miss rates swing by an order of magnitude between phases.  The
// PhaseTimeline makes those dynamics observable for *every* run: it
// snapshots MachineStats deltas every K cycles into a fixed-capacity ring
// buffer, yielding per-phase miss-rate / IPC / tool-overhead series
// without unbounded memory (the oldest slices fall off a long run).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace hpm::telemetry {

/// One timeline slice: deltas over [at - previous at, at].
struct PhaseSample {
  sim::Cycles at = 0;  ///< cumulative total_cycles at the snapshot
  std::uint64_t app_instructions = 0;
  std::uint64_t app_refs = 0;
  std::uint64_t app_misses = 0;
  std::uint64_t tool_refs = 0;
  std::uint64_t tool_misses = 0;
  std::uint64_t interrupts = 0;
  sim::Cycles app_cycles = 0;
  sim::Cycles tool_cycles = 0;
  /// Per-cache-level miss deltas / resident-line samples, innermost first.
  /// Populated only when the timeline watches a multi-level hierarchy, so
  /// single-level metrics exports stay byte-identical.
  std::vector<std::uint64_t> level_misses;
  std::vector<std::uint64_t> level_resident;

  /// Misses per application reference within the slice (0 when idle).
  [[nodiscard]] double miss_rate() const noexcept {
    return app_refs == 0 ? 0.0
                         : static_cast<double>(app_misses) /
                               static_cast<double>(app_refs);
  }
  /// Application instructions per cycle within the slice.
  [[nodiscard]] double ipc() const noexcept {
    const sim::Cycles cycles = app_cycles + tool_cycles;
    return cycles == 0 ? 0.0
                       : static_cast<double>(app_instructions) /
                             static_cast<double>(cycles);
  }
};

class PhaseTimeline {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  /// Snapshot roughly every `every` cycles (the driver decides exactly
  /// when; see Machine::set_periodic_hook), keeping the most recent
  /// `capacity` slices.
  PhaseTimeline(sim::Cycles every, std::size_t capacity = kDefaultCapacity);

  /// Record the delta between `stats` and the previous snapshot.  When the
  /// ring is full the oldest slice is overwritten.
  void snapshot(const sim::MachineStats& stats);

  /// Also sample per-level miss deltas and resident-line counts from
  /// `hierarchy` (not owned; must outlive the timeline) on every snapshot.
  /// Only multi-level hierarchies populate the per-level columns; pass
  /// nullptr (or a single-level hierarchy) to keep slices hierarchy-free.
  void watch_hierarchy(const sim::MemoryHierarchy* hierarchy);

  /// Slices in chronological order (oldest surviving slice first).
  [[nodiscard]] std::vector<PhaseSample> samples() const;

  [[nodiscard]] sim::Cycles every() const noexcept { return every_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  /// Total snapshots ever taken (>= size() once the ring has wrapped).
  [[nodiscard]] std::uint64_t total_snapshots() const noexcept {
    return total_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ - ring_.size();
  }

 private:
  sim::Cycles every_;
  std::size_t capacity_;
  std::vector<PhaseSample> ring_;
  std::size_t head_ = 0;  ///< overwrite position once full
  std::uint64_t total_ = 0;
  sim::MachineStats last_{};
  const sim::MemoryHierarchy* hierarchy_ = nullptr;  ///< multi-level only
  std::vector<std::uint64_t> last_level_misses_;
};

}  // namespace hpm::telemetry
