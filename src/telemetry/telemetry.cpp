#include "telemetry/telemetry.hpp"

namespace hpm::telemetry {

std::uint64_t RunMetrics::counter_value(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

Telemetry::Telemetry(Config config) : config_(config) {
  if (config_.timeline_every > 0) {
    timeline_.emplace(config_.timeline_every, config_.timeline_capacity);
  }
}

void Telemetry::attach(sim::Machine& machine) {
  c_overflow_ = &registry_.counter("machine.interrupts.miss_overflow");
  c_timer_ = &registry_.counter("machine.interrupts.cycle_timer");
  machine.set_interrupt_observer([this, &machine](sim::InterruptKind kind) {
    switch (kind) {
      case sim::InterruptKind::kMissOverflow:
        c_overflow_->inc();
        if (sink_ != nullptr) {
          emit({.category = "sim",
                .name = "pmu.overflow",
                .phase = 'i',
                .ts = machine.now(),
                .args = {{"global_misses", machine.pmu().global_misses()}}});
        }
        break;
      case sim::InterruptKind::kCycleTimer:
        c_timer_->inc();
        break;
    }
  });
  if (timeline_) {
    // Multi-level machines get per-level miss/resident columns in every
    // slice; single-level timelines are unchanged (watch_hierarchy ignores
    // hierarchies of one level).
    timeline_->watch_hierarchy(&machine.hierarchy());
    machine.set_periodic_hook(
        config_.timeline_every,
        [this](const sim::MachineStats& stats) { timeline_->snapshot(stats); });
  }
}

void Telemetry::detach(sim::Machine& machine) {
  machine.set_interrupt_observer(nullptr);
  machine.set_periodic_hook(0, nullptr);
  if (timeline_) timeline_->watch_hierarchy(nullptr);
}

RunMetrics Telemetry::snapshot() const {
  RunMetrics out;
  out.enabled = true;
  registry_.for_each_counter(
      [&](const std::string& name, const Counter& counter) {
        out.counters.emplace_back(name, counter.value());
      });
  registry_.for_each_gauge([&](const std::string& name, const Gauge& gauge) {
    out.gauges.emplace_back(name, gauge.value());
  });
  registry_.for_each_histogram(
      [&](const std::string& name, const Histogram& histogram) {
        out.histograms.push_back({name, histogram.bounds(),
                                  histogram.counts(), histogram.count(),
                                  histogram.sum()});
      });
  if (timeline_) {
    out.timeline_every = timeline_->every();
    out.timeline_snapshots = timeline_->total_snapshots();
    out.timeline = timeline_->samples();
  }
  return out;
}

}  // namespace hpm::telemetry
