// hpm::telemetry — the per-run instrumentation context.
//
// A Telemetry object owns one MetricsRegistry and (optionally) one
// PhaseTimeline, and forwards typed events to an externally owned
// TraceSink.  It is wired into a run in three places:
//   * Machine hooks (attach()): a periodic cycle hook feeds the timeline
//     and an interrupt observer counts/announces PMU overflow and timer
//     deliveries — both below the tool layer, costing no virtual cycles;
//   * Tools (core::Tool::set_telemetry): samplers and the n-way search
//     register named counters/histograms and emit decision events;
//   * the harness: run_experiment constructs one Telemetry per run when
//     RunConfig asks for it and snapshots it into RunResult::metrics.
//
// Zero-cost-when-disabled contract: with telemetry off, no Telemetry
// object exists; every call site guards on a null pointer and the Machine
// hot path performs a single `hook_every_ != 0` test (measured by the
// bench_common guardrail, see docs/telemetry.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/machine.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeline.hpp"
#include "telemetry/trace_sink.hpp"

namespace hpm::telemetry {

struct Config {
  /// Master switch: when false (and no trace sink is installed) the run
  /// carries no telemetry at all.
  bool enabled = false;
  /// Snapshot MachineStats deltas every this many cycles; 0 disables the
  /// phase timeline.
  sim::Cycles timeline_every = 0;
  /// Ring-buffer capacity of the timeline (oldest slices drop off).
  std::size_t timeline_capacity = PhaseTimeline::kDefaultCapacity;
};

/// Value-type snapshot of a run's telemetry, taken after the run ends.
/// Deterministic: instruments appear in registration order, and every
/// field is a pure function of the run spec (never of wall clock or
/// scheduling), so jobs=1 and jobs=N batches export identical blocks.
struct RunMetrics {
  struct HistogramSnapshot {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  bool enabled = false;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
  sim::Cycles timeline_every = 0;
  std::uint64_t timeline_snapshots = 0;  ///< total taken, incl. dropped
  std::vector<PhaseSample> timeline;

  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
};

class Telemetry {
 public:
  explicit Telemetry(Config config = {});
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] MetricsRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const noexcept {
    return registry_;
  }
  /// Null when the timeline is disabled.
  [[nodiscard]] PhaseTimeline* timeline() noexcept {
    return timeline_ ? &*timeline_ : nullptr;
  }

  /// Install/replace the event sink (not owned; null disables tracing).
  void set_sink(TraceSink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] bool tracing() const noexcept { return sink_ != nullptr; }
  void emit(const TraceEvent& event) {
    if (sink_ != nullptr) sink_->event(event);
  }

  /// Install the sim-level hooks: the periodic stats hook (timeline) and
  /// the interrupt observer (overflow/timer counters + trace events).
  /// Call detach() before destroying this object while the machine lives.
  void attach(sim::Machine& machine);
  void detach(sim::Machine& machine);

  [[nodiscard]] RunMetrics snapshot() const;

 private:
  Config config_;
  MetricsRegistry registry_;
  std::optional<PhaseTimeline> timeline_;
  TraceSink* sink_ = nullptr;
  Counter* c_overflow_ = nullptr;
  Counter* c_timer_ = nullptr;
};

}  // namespace hpm::telemetry
