#include "telemetry/trace_sink.hpp"

#include <array>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace hpm::telemetry {

namespace {

// Local minimal JSON string escaping (telemetry sits below harness, whose
// exporter cannot be used here without inverting the dependency).
void write_escaped(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf.data();
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_double(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  std::array<char, 32> buf{};
  const auto [ptr, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), value);
  if (ec != std::errc{}) {
    out << "null";
    return;
  }
  out << std::string_view(buf.data(),
                          static_cast<std::size_t>(ptr - buf.data()));
}

}  // namespace

void write_event_json(std::ostream& out, const TraceEvent& event) {
  out << "{\"name\":";
  write_escaped(out, event.name);
  out << ",\"cat\":";
  write_escaped(out, event.category);
  out << ",\"ph\":\"" << event.phase << "\"";
  out << ",\"ts\":" << event.ts;
  if (event.phase == 'X') out << ",\"dur\":" << event.dur;
  out << ",\"pid\":" << event.pid << ",\"tid\":" << event.tid;
  if (event.phase == 'i') {
    out << ",\"s\":\"t\"";  // instant scope: thread
  }
  if (!event.args.empty()) {
    out << ",\"args\":{";
    bool first = true;
    for (const TraceArg& arg : event.args) {
      if (!first) out << ',';
      first = false;
      write_escaped(out, arg.key);
      out << ':';
      switch (arg.kind) {
        case TraceArg::Kind::kUint: out << arg.uint_value; break;
        case TraceArg::Kind::kInt: out << arg.int_value; break;
        case TraceArg::Kind::kDouble: write_double(out, arg.double_value); break;
        case TraceArg::Kind::kString: write_escaped(out, arg.string_value); break;
      }
    }
    out << '}';
  }
  out << '}';
}

// -- ChromeTraceSink ---------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(out) {
  out_ << "{\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

void ChromeTraceSink::event(const TraceEvent& event) {
  std::lock_guard lock(mutex_);
  if (closed_) return;
  if (any_) out_ << ',';
  any_ = true;
  out_ << "\n";
  write_event_json(out_, event);
}

void ChromeTraceSink::close() {
  std::lock_guard lock(mutex_);
  if (closed_) return;
  closed_ = true;
  if (any_) out_ << '\n';
  out_ << "]}" << '\n';
  out_.flush();
}

// -- JsonlTraceSink ----------------------------------------------------------

void JsonlTraceSink::event(const TraceEvent& event) {
  std::lock_guard lock(mutex_);
  write_event_json(out_, event);
  out_ << '\n';
}

// -- WallSpan ----------------------------------------------------------------

std::uint64_t WallSpan::now_us() {
  // One epoch per process so spans recorded by different runs and by the
  // exporters share a time axis.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

WallSpan::WallSpan(TraceSink* sink, std::string_view name, std::uint32_t tid)
    : sink_(sink), name_(name), tid_(tid) {
  if (sink_ != nullptr) start_us_ = now_us();
}

WallSpan::~WallSpan() {
  if (sink_ == nullptr) return;
  TraceEvent event;
  event.category = "self";
  event.name = name_;
  event.phase = 'X';
  event.ts = start_us_;
  event.dur = now_us() - start_us_;
  event.pid = 2;  // self-profiling plane (0 = simulator, 1 = batch)
  event.tid = tid_;
  sink_->event(event);
}

// -- CountingTraceSink -------------------------------------------------------

void CountingTraceSink::event(const TraceEvent& event) {
  std::lock_guard lock(mutex_);
  ++total_;
  const std::string key =
      std::string(event.category) + "/" + std::string(event.name);
  for (auto& [name, count] : by_key_) {
    if (name == key) {
      ++count;
      return;
    }
  }
  by_key_.emplace_back(key, 1);
}

std::uint64_t CountingTraceSink::count(std::string_view category,
                                       std::string_view name) const {
  const std::string key = std::string(category) + "/" + std::string(name);
  for (const auto& [k, v] : by_key_) {
    if (k == key) return v;
  }
  return 0;
}

}  // namespace hpm::telemetry
